/**
 * @file
 * Forensics demo: build a database with several tables and large
 * values, pull the plug mid-commit, and inspect what is physically
 * on the NVRAM media before and after recovery -- committed frames,
 * the uncommitted/torn tail of the in-flight transaction, heap block
 * states, the decoded B-tree pages, and the platform counters in
 * their stable documented order.
 *
 * `--shards N` (N >= 2) switches to the sharded-store demo
 * (DESIGN.md section 10): it crashes a cross-shard transaction
 * between its PREPARE and DECISION records, walks every shard's log
 * to show the in-doubt state on the media, then recovers and reports
 * how the 2PC resolution settled it. `--shard k` restricts the
 * media/page output to one shard; stats and metrics always aggregate
 * the whole shard set in stable key order.
 *
 * `--metrics <path>` additionally dumps the full metrics registry
 * (counters + gauges + latency histograms) as JSON; `--trace <path>`
 * enables the transaction-phase tracer for the whole run and writes
 * a Chrome trace_event file loadable in about:tracing / Perfetto.
 *
 * `--forensics` prints the flight-recorder post-mortem recovery
 * built from the ring that survived the crash (DESIGN.md section
 * 12): last durable epoch, possibly in-flight transactions, torn
 * ring slots, checkpoint lag -- plus, in sharded mode, the merged
 * cross-shard 2PC timeline keyed by gtid. `--forensics-json <path>`
 * writes the same post-mortem as one JSON document.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "db/inspect.hpp"
#include "shard/sharded_connection.hpp"
#include "shard/sharded_database.hpp"

using namespace nvwal;

namespace
{

/** Media reports of every shard (or just @p only), ascending order. */
void
printShardMedia(Env &env, std::uint32_t page_size, std::uint32_t shards,
                std::int32_t only)
{
    for (std::uint32_t k = 0; k < shards; ++k) {
        if (only >= 0 && static_cast<std::uint32_t>(only) != k)
            continue;
        std::printf("-- shard %02u media (namespace %s) --\n", k,
                    ShardedDatabase::shardHeapNamespace(k).c_str());
        NvwalMediaReport media;
        NVWAL_CHECK_OK(collectNvwalMediaReport(
            env, page_size, &media,
            ShardedDatabase::shardHeapNamespace(k)));
        printNvwalMediaReport(media);
    }
}

/** Render one merged gtid timeline entry list as a JSON array. */
std::string
timelineJson(const std::vector<GtidTimeline> &timeline)
{
    const auto shardArray = [](const std::vector<std::uint32_t> &v) {
        std::string out = "[";
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0)
                out += ",";
            out += std::to_string(v[i]);
        }
        return out + "]";
    };
    std::string out = "[";
    for (std::size_t i = 0; i < timeline.size(); ++i) {
        const GtidTimeline &t = timeline[i];
        if (i > 0)
            out += ",";
        out += "{\"gtid\":" + std::to_string(t.gtid) +
               ",\"prepared_shards\":" + shardArray(t.preparedShards) +
               ",\"committed_shards\":" + shardArray(t.committedShards) +
               ",\"aborted_shards\":" + shardArray(t.abortedShards) + "}";
    }
    return out + "]";
}

/** Human-readable merged cross-shard 2PC timeline. */
void
printTimeline(const std::vector<GtidTimeline> &timeline)
{
    std::printf("-- merged cross-shard 2PC timeline --\n");
    if (timeline.empty()) {
        std::printf("  (no surviving PREPARE/DECISION ring records)\n");
        return;
    }
    const auto shardList = [](const std::vector<std::uint32_t> &v) {
        std::string out;
        for (std::size_t i = 0; i < v.size(); ++i)
            out += (i > 0 ? "," : "") + std::to_string(v[i]);
        return out.empty() ? std::string("-") : out;
    };
    for (const GtidTimeline &t : timeline)
        std::printf("  gtid %llu: prepared on [%s], commit decisions "
                    "on [%s], abort decisions on [%s]\n",
                    static_cast<unsigned long long>(t.gtid),
                    shardList(t.preparedShards).c_str(),
                    shardList(t.committedShards).c_str(),
                    shardList(t.abortedShards).c_str());
}

/** Total surviving 2PC records across the shard set. */
void
twoPcTally(Env &env, std::uint32_t page_size, std::uint32_t shards,
           std::uint64_t *prepares, std::uint64_t *decisions)
{
    *prepares = 0;
    *decisions = 0;
    for (std::uint32_t k = 0; k < shards; ++k) {
        NvwalMediaReport media;
        NVWAL_CHECK_OK(collectNvwalMediaReport(
            env, page_size, &media,
            ShardedDatabase::shardHeapNamespace(k)));
        *prepares += media.prepareRecords;
        *decisions += media.decisionRecords;
    }
}

/**
 * The sharded forensics walk-through. Returns nonzero if recovery
 * left the doomed transaction torn (which would be an engine bug);
 * leaves the open, recovered store in @p db so main() can append the
 * shared metrics/trace tail.
 */
int
runShardedDemo(Env &env, std::uint32_t shards, std::int32_t only,
               std::unique_ptr<ShardedDatabase> *db)
{
    using Op = ShardedConnection::Op;

    ShardConfig sconfig;
    sconfig.baseName = "inspected";
    sconfig.shardCount = shards;
    const std::uint32_t page_size = sconfig.dbTemplate.pageSize;

    NVWAL_CHECK_OK(ShardedDatabase::open(env, sconfig, db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK((*db)->connect(&conn));

    for (RowId k = 1; k <= 60; ++k) {
        ByteBuffer v(120, static_cast<std::uint8_t>(k));
        NVWAL_CHECK_OK(conn->insert(k, ConstByteSpan(v.data(), v.size())));
    }
    // A few committed cross-shard transactions, so the healthy logs
    // already carry PREPARE/DECISION records to look at.
    for (RowId k = 0; k < 5; ++k) {
        NVWAL_CHECK_OK(conn->runAtomic(
            {Op::insert(1000 + k, std::string("left-") +
                                      std::to_string(k)),
             Op::insert(2000 + k, std::string("right-") +
                                      std::to_string(k))}));
    }

    std::printf("==== healthy shard set (%u shards) ====\n", shards);
    for (std::uint32_t k = 0; k < shards; ++k) {
        std::printf("-- shard %02u (%s) --\n", k,
                    ShardedDatabase::shardDbName(sconfig, k).c_str());
        DatabaseReport report;
        NVWAL_CHECK_OK(collectDatabaseReport((*db)->shard(k), &report));
        printDatabaseReport(report);
    }
    std::printf("\n==== healthy media ====\n");
    printShardMedia(env, page_size, shards, only);

    // A transaction spanning two distinct shards, doomed to crash
    // between its PREPARE and DECISION records.
    RowId doomed_a = 9000;
    while ((*db)->shardOf(doomed_a) != 0)
        ++doomed_a;
    RowId doomed_b = doomed_a + 1;
    while ((*db)->shardOf(doomed_b) == 0)
        ++doomed_b;

    std::printf("\n==== crashing a cross-shard transaction between "
                "PREPARE and DECISION ====\n");
    std::printf("doomed txn: insert %lld (shard %u) + insert %lld "
                "(shard %u)\n",
                static_cast<long long>(doomed_a), (*db)->shardOf(doomed_a),
                static_cast<long long>(doomed_b),
                (*db)->shardOf(doomed_b));
    conn.reset();
    db->reset();
    const Env::MediaSnapshot snap = env.snapshotMedia();
    // The committed warm-up transactions already left PREPARE/DECISION
    // records on the media; only records beyond this baseline belong
    // to the doomed transaction.
    std::uint64_t base_prepares = 0;
    std::uint64_t base_decisions = 0;
    twoPcTally(env, page_size, shards, &base_prepares, &base_decisions);

    // Find the 2PC window deterministically: restore the image, arm a
    // crash n device ops into the commit, and keep advancing n until
    // the post-crash media holds a surviving PREPARE with no decision
    // record anywhere -- a transaction recovery must treat as in
    // doubt.
    bool in_window = false;
    for (std::uint64_t n = 1; n <= 600 && !in_window; n += 3) {
        env.restoreMedia(snap);
        std::unique_ptr<ShardedDatabase> victim;
        NVWAL_CHECK_OK(ShardedDatabase::open(env, sconfig, &victim));
        std::unique_ptr<ShardedConnection> vconn;
        NVWAL_CHECK_OK(victim->connect(&vconn));
        env.nvramDevice.setScheduledCrashPolicy(
            FailurePolicy::Adversarial, 0.5);
        env.nvramDevice.scheduleCrashAtOp(n);
        bool crashed = false;
        try {
            NVWAL_CHECK_OK(vconn->runAtomic(
                {Op::insert(doomed_a, std::string("doomed-a")),
                 Op::insert(doomed_b, std::string("doomed-b"))}));
        } catch (const PowerFailure &) {
            crashed = true;
            env.fs.crash();
        }
        env.nvramDevice.scheduleCrashAtOp(0);
        vconn.reset();
        victim.reset();
        if (!crashed)
            break;  // n is already past the whole commit
        std::uint64_t prepares = 0;
        std::uint64_t decisions = 0;
        twoPcTally(env, page_size, shards, &prepares, &decisions);
        if (prepares > base_prepares && decisions == base_decisions) {
            in_window = true;
            std::printf("power failure %llu device ops into the "
                        "commit: %llu new PREPARE record(s) survive, "
                        "no decision record anywhere\n",
                        static_cast<unsigned long long>(n),
                        static_cast<unsigned long long>(
                            prepares - base_prepares));
        }
    }
    if (!in_window)
        std::printf("note: no injection point left the store in "
                    "doubt; showing the final attempt's media\n");

    std::printf("\n==== raw NVRAM media after the crash ====\n");
    printShardMedia(env, page_size, shards, only);

    std::printf("\n==== after recovery ====\n");
    NVWAL_CHECK_OK(ShardedDatabase::recoverAfterCrash(env, sconfig, db));
    for (const InDoubtResolution &r : (*db)->resolutions()) {
        std::printf("in-doubt gtid %llu on shard %u: %s (%s)\n",
                    static_cast<unsigned long long>(r.gtid), r.shard,
                    r.committed ? "committed" : "aborted",
                    r.decidedByShard < 0
                        ? "presumed abort"
                        : "decision record found on another shard");
    }
    if ((*db)->resolutions().empty())
        std::printf("no transactions were in doubt\n");
    NVWAL_CHECK_OK((*db)->verifyIntegrity());
    NVWAL_CHECK_OK((*db)->connect(&conn));
    ByteBuffer out;
    const bool have_a = conn->get(doomed_a, &out).isOk();
    const bool have_b = conn->get(doomed_b, &out).isOk();
    std::printf("doomed txn after recovery: key %lld %s, key %lld %s "
                "-> %s\n",
                static_cast<long long>(doomed_a),
                have_a ? "present" : "absent",
                static_cast<long long>(doomed_b),
                have_b ? "present" : "absent",
                have_a == have_b ? "atomic" : "TORN (bug!)");
    printShardMedia(env, page_size, shards, only);
    for (std::uint32_t k = 0; k < shards; ++k) {
        std::printf("-- shard %02u (%s) --\n", k,
                    ShardedDatabase::shardDbName(sconfig, k).c_str());
        DatabaseReport report;
        NVWAL_CHECK_OK(collectDatabaseReport((*db)->shard(k), &report));
        printDatabaseReport(report);
    }
    return have_a == have_b ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string metrics_path;
    std::string trace_path;
    std::string forensics_json_path;
    bool forensics = false;
    std::uint32_t shards = 0;
    std::int32_t only_shard = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--forensics") == 0) {
            forensics = true;
        } else if (std::strcmp(argv[i], "--forensics-json") == 0 &&
                   i + 1 < argc) {
            forensics_json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
            only_shard = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--shards N [--shard k]] "
                         "[--metrics <path>] [--trace <path>] "
                         "[--forensics] [--forensics-json <path>]\n",
                         argv[0]);
            return 2;
        }
    }
    if (shards == 1) {
        std::fprintf(stderr,
                     "the sharded demo needs --shards >= 2 (the crash "
                     "targets a cross-shard transaction)\n");
        return 2;
    }
    if (shards != 0 &&
        (only_shard >= static_cast<std::int32_t>(shards))) {
        std::fprintf(stderr, "--shard %d out of range for %u shards\n",
                     only_shard, shards);
        return 2;
    }

    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    if (!trace_path.empty())
        env.stats.tracer().setEnabled(true);

    int demo_rc = 0;
    std::string forensics_doc;
    if (shards > 0) {
        std::unique_ptr<ShardedDatabase> sdb;
        demo_rc = runShardedDemo(env, shards, only_shard, &sdb);
        if (forensics || !forensics_json_path.empty()) {
            const std::vector<GtidTimeline> timeline =
                sdb->forensicsTimeline();
            if (forensics) {
                std::printf("\n==== crash forensics (flight recorder) "
                            "====\n");
                for (std::uint32_t k = 0; k < shards; ++k) {
                    std::printf("-- shard %02u post-mortem --\n", k);
                    printRecoveryReport(sdb->shardRecoveryReport(k),
                                        stdout);
                }
                printTimeline(timeline);
            }
            if (!forensics_json_path.empty()) {
                forensics_doc = "{\"shards\":[";
                for (std::uint32_t k = 0; k < shards; ++k) {
                    if (k > 0)
                        forensics_doc += ",";
                    forensics_doc +=
                        recoveryReportJson(sdb->shardRecoveryReport(k));
                }
                forensics_doc += "],\"timeline\":" +
                                 timelineJson(timeline) + "}";
            }
        }
    } else {
        DbConfig config;
        config.name = "inspected.db";
        config.walMode = WalMode::Nvwal;

        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        NVWAL_CHECK_OK(db->createTable("blobs"));
        Table *blobs;
        NVWAL_CHECK_OK(db->openTable("blobs", &blobs));

        for (RowId k = 1; k <= 40; ++k) {
            ByteBuffer v(120, static_cast<std::uint8_t>(k));
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        ByteBuffer big(20000, 0xBB);
        NVWAL_CHECK_OK(
            blobs->insert(1, ConstByteSpan(big.data(), big.size())));

        std::printf("==== healthy database ====\n");
        DatabaseReport db_report;
        NVWAL_CHECK_OK(collectDatabaseReport(*db, &db_report));
        printDatabaseReport(db_report);

        std::printf("\n==== decoded pages ====\n");
        NVWAL_CHECK_OK(printPage(db->pager(), db->pager().rootPage()));
        Table *main_table;
        NVWAL_CHECK_OK(db->openTable("main", &main_table));
        NVWAL_CHECK_OK(
            printPage(db->pager(), main_table->btree().rootPage()));

        // Kill the power while a transaction is mid-commit.
        std::printf("\n==== pulling the plug mid-commit ====\n");
        env.nvramDevice.setScheduledCrashPolicy(
            FailurePolicy::Adversarial, 0.5);
        env.nvramDevice.scheduleCrashAtOp(10);
        try {
            NVWAL_CHECK_OK(db->begin());
            for (RowId k = 100; k < 110; ++k) {
                ByteBuffer v(120, 0xCC);
                NVWAL_CHECK_OK(
                    db->insert(k, ConstByteSpan(v.data(), v.size())));
            }
            NVWAL_CHECK_OK(db->commit());
        } catch (const PowerFailure &) {
            std::printf("power failure!\n");
            env.fs.crash();
        }
        env.nvramDevice.scheduleCrashAtOp(0);
        db.reset();

        std::printf("\n==== raw NVRAM media after the crash ====\n");
        NvwalMediaReport media;
        NVWAL_CHECK_OK(
            collectNvwalMediaReport(env, config.pageSize, &media));
        printNvwalMediaReport(media);

        std::printf("\n==== after recovery ====\n");
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        NVWAL_CHECK_OK(db->verifyIntegrity());
        NVWAL_CHECK_OK(
            collectNvwalMediaReport(env, config.pageSize, &media));
        printNvwalMediaReport(media);
        NVWAL_CHECK_OK(collectDatabaseReport(*db, &db_report));
        printDatabaseReport(db_report);
        if (forensics) {
            std::printf("\n==== crash forensics (flight recorder) "
                        "====\n");
            printRecoveryReport(db->recoveryReport(), stdout);
        }
        if (!forensics_json_path.empty())
            forensics_doc = recoveryReportJson(db->recoveryReport());
    }

    std::printf("\n==== platform counters (stable order) ====\n");
    printCounters(env.stats);
    std::printf("\n==== latency histograms ====\n");
    printHistograms(env.stats);

    if (!metrics_path.empty()) {
        const std::string doc = metricsJson(env.stats);
        std::FILE *f = std::fopen(metrics_path.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::printf("\nwrote metrics JSON to %s\n", metrics_path.c_str());
    }
    if (!forensics_json_path.empty()) {
        std::FILE *f = std::fopen(forensics_json_path.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n",
                         forensics_json_path.c_str());
            return 1;
        }
        std::fwrite(forensics_doc.data(), 1, forensics_doc.size(), f);
        std::fclose(f);
        std::printf("wrote forensics JSON to %s\n",
                    forensics_json_path.c_str());
    }
    if (!trace_path.empty()) {
        NVWAL_CHECK_OK(writeChromeTrace(env.stats.tracer(), trace_path));
        std::printf("wrote Chrome trace (%llu events) to %s\n",
                    static_cast<unsigned long long>(
                        env.stats.tracer().size()),
                    trace_path.c_str());
    }
    return demo_rc;
}
