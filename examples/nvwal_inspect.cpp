/**
 * @file
 * Forensics demo: build a database with several tables and large
 * values, pull the plug mid-commit, and inspect what is physically
 * on the NVRAM media before and after recovery -- committed frames,
 * the uncommitted/torn tail of the in-flight transaction, heap block
 * states, the decoded B-tree pages, and the platform counters in
 * their stable documented order.
 *
 * `--metrics <path>` additionally dumps the full metrics registry
 * (counters + gauges + latency histograms) as JSON; `--trace <path>`
 * enables the transaction-phase tracer for the whole run and writes
 * a Chrome trace_event file loadable in about:tracing / Perfetto.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "db/inspect.hpp"

using namespace nvwal;

int
main(int argc, char **argv)
{
    std::string metrics_path;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
            metrics_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--metrics <path>] [--trace <path>]\n",
                         argv[0]);
            return 2;
        }
    }

    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    if (!trace_path.empty())
        env.stats.tracer().setEnabled(true);

    DbConfig config;
    config.name = "inspected.db";
    config.walMode = WalMode::Nvwal;

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->createTable("blobs"));
    Table *blobs;
    NVWAL_CHECK_OK(db->openTable("blobs", &blobs));

    for (RowId k = 1; k <= 40; ++k) {
        ByteBuffer v(120, static_cast<std::uint8_t>(k));
        NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
    }
    ByteBuffer big(20000, 0xBB);
    NVWAL_CHECK_OK(blobs->insert(1, ConstByteSpan(big.data(), big.size())));

    std::printf("==== healthy database ====\n");
    DatabaseReport db_report;
    NVWAL_CHECK_OK(collectDatabaseReport(*db, &db_report));
    printDatabaseReport(db_report);

    std::printf("\n==== decoded pages ====\n");
    NVWAL_CHECK_OK(printPage(db->pager(), db->pager().rootPage()));
    Table *main_table;
    NVWAL_CHECK_OK(db->openTable("main", &main_table));
    NVWAL_CHECK_OK(printPage(db->pager(), main_table->btree().rootPage()));

    // Kill the power while a transaction is mid-commit.
    std::printf("\n==== pulling the plug mid-commit ====\n");
    env.nvramDevice.setScheduledCrashPolicy(FailurePolicy::Adversarial,
                                            0.5);
    env.nvramDevice.scheduleCrashAtOp(10);
    try {
        NVWAL_CHECK_OK(db->begin());
        for (RowId k = 100; k < 110; ++k) {
            ByteBuffer v(120, 0xCC);
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        NVWAL_CHECK_OK(db->commit());
    } catch (const PowerFailure &) {
        std::printf("power failure!\n");
        env.fs.crash();
    }
    env.nvramDevice.scheduleCrashAtOp(0);
    db.reset();

    std::printf("\n==== raw NVRAM media after the crash ====\n");
    NvwalMediaReport media;
    NVWAL_CHECK_OK(
        collectNvwalMediaReport(env, config.pageSize, &media));
    printNvwalMediaReport(media);

    std::printf("\n==== after recovery ====\n");
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->verifyIntegrity());
    NVWAL_CHECK_OK(collectNvwalMediaReport(env, config.pageSize, &media));
    printNvwalMediaReport(media);
    NVWAL_CHECK_OK(collectDatabaseReport(*db, &db_report));
    printDatabaseReport(db_report);

    std::printf("\n==== platform counters (stable order) ====\n");
    printCounters(env.stats);
    std::printf("\n==== latency histograms ====\n");
    printHistograms(env.stats);

    if (!metrics_path.empty()) {
        const std::string doc = metricsJson(env.stats);
        std::FILE *f = std::fopen(metrics_path.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
        std::printf("\nwrote metrics JSON to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        NVWAL_CHECK_OK(writeChromeTrace(env.stats.tracer(), trace_path));
        std::printf("wrote Chrome trace (%llu events) to %s\n",
                    static_cast<unsigned long long>(
                        env.stats.tracer().size()),
                    trace_path.c_str());
    }
    return 0;
}
