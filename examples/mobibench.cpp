/**
 * @file
 * A Mobibench-style workload driver (the benchmark app the paper
 * uses in section 5): N transactions, each inserting, updating or
 * deleting K records of a given size, against any WAL mode on either
 * platform preset, with a tunable NVRAM write latency.
 *
 * Examples:
 *   mobibench                                   # paper defaults
 *   mobibench --mode optimized-wal              # flash baseline
 *   mobibench --mode nvwal --sync cs --latency 1900
 *   mobibench --op update --txns 500 --ops 4
 *   mobibench --platform tuna --latency 500
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "db/database.hpp"

using namespace nvwal;

namespace
{

struct Options
{
    std::string platform = "nexus5";
    std::string mode = "nvwal";
    std::string sync = "lazy";
    std::string op = "insert";
    bool diff = true;
    bool userHeap = true;
    SimTime latencyNs = 2000;
    int txns = 1000;
    int opsPerTxn = 1;
    std::size_t recordSize = 100;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --platform tuna|nexus5       cost-model preset (nexus5)\n"
        "  --latency NS                 NVRAM write latency (2000)\n"
        "  --mode stock-wal|optimized-wal|nvwal\n"
        "  --sync eager|lazy|cs         NVWAL sync mode (lazy)\n"
        "  --no-diff                    disable differential logging\n"
        "  --no-user-heap               nvmalloc per frame (LS mode)\n"
        "  --op insert|update|delete    workload (insert)\n"
        "  --txns N                     transactions (1000)\n"
        "  --ops N                      statements per txn (1)\n"
        "  --record-size B              record payload bytes (100)\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--platform") {
            opt.platform = next();
        } else if (arg == "--latency") {
            opt.latencyNs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--mode") {
            opt.mode = next();
        } else if (arg == "--sync") {
            opt.sync = next();
        } else if (arg == "--no-diff") {
            opt.diff = false;
        } else if (arg == "--no-user-heap") {
            opt.userHeap = false;
        } else if (arg == "--op") {
            opt.op = next();
        } else if (arg == "--txns") {
            opt.txns = std::atoi(next());
        } else if (arg == "--ops") {
            opt.opsPerTxn = std::atoi(next());
        } else if (arg == "--record-size") {
            opt.recordSize = std::strtoull(next(), nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    EnvConfig env_config;
    if (opt.platform == "tuna")
        env_config.cost = CostModel::tuna(opt.latencyNs);
    else if (opt.platform == "nexus5")
        env_config.cost = CostModel::nexus5(opt.latencyNs);
    else
        usage(argv[0]);
    Env env(env_config);

    DbConfig config;
    config.name = "mobibench.db";
    if (opt.mode == "stock-wal") {
        config.walMode = WalMode::FileStock;
    } else if (opt.mode == "optimized-wal") {
        config.walMode = WalMode::FileOptimized;
    } else if (opt.mode == "nvwal") {
        config.walMode = WalMode::Nvwal;
        if (opt.sync == "eager")
            config.nvwal.syncMode = SyncMode::Eager;
        else if (opt.sync == "lazy")
            config.nvwal.syncMode = SyncMode::Lazy;
        else if (opt.sync == "cs")
            config.nvwal.syncMode = SyncMode::ChecksumAsync;
        else
            usage(argv[0]);
        config.nvwal.diffLogging = opt.diff;
        config.nvwal.userHeap = opt.userHeap;
    } else {
        usage(argv[0]);
    }

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    // Pre-populate for update/delete workloads.
    Rng rng(42);
    const bool needs_population = opt.op != "insert";
    const int total_records = opt.txns * opt.opsPerTxn;
    if (needs_population) {
        for (int k = 0; k < total_records; ++k) {
            ByteBuffer v(opt.recordSize,
                         static_cast<std::uint8_t>(rng.next()));
            NVWAL_CHECK_OK(db->insert(k, ConstByteSpan(v.data(), v.size())));
        }
        NVWAL_CHECK_OK(db->checkpoint());
    }

    const SimTime start = env.clock.now();
    const StatsSnapshot before = env.stats.snapshot();
    RowId key = 0;
    for (int t = 0; t < opt.txns; ++t) {
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < opt.opsPerTxn; ++i, ++key) {
            ByteBuffer v(opt.recordSize,
                         static_cast<std::uint8_t>(rng.next()));
            const ConstByteSpan value(v.data(), v.size());
            if (opt.op == "insert")
                NVWAL_CHECK_OK(db->insert(key, value));
            else if (opt.op == "update")
                NVWAL_CHECK_OK(db->update(key, value));
            else if (opt.op == "delete")
                NVWAL_CHECK_OK(db->remove(key));
            else
                usage(argv[0]);
        }
        NVWAL_CHECK_OK(db->commit());
    }
    const SimTime elapsed = env.clock.now() - start;
    const StatsSnapshot delta =
        MetricsRegistry::delta(before, env.stats.snapshot());

    const double seconds = static_cast<double>(elapsed) / 1e9;
    std::printf("scheme           : %s\n", db->wal().name());
    std::printf("platform         : %s, NVRAM write latency %llu ns\n",
                opt.platform.c_str(),
                static_cast<unsigned long long>(opt.latencyNs));
    std::printf("workload         : %d txns x %d %s of %zu bytes\n",
                opt.txns, opt.opsPerTxn, opt.op.c_str(), opt.recordSize);
    std::printf("simulated time   : %.3f s\n", seconds);
    std::printf("throughput       : %.0f txns/sec\n",
                static_cast<double>(opt.txns) / seconds);
    auto stat = [&](const char *name) -> unsigned long long {
        auto it = delta.find(name);
        return it == delta.end() ? 0ull : it->second;
    };
    std::printf("NVRAM frames     : %llu\n",
                stat(stats::kNvramFramesWritten));
    std::printf("NVRAM bytes      : %llu\n", stat(stats::kNvramBytesLogged));
    std::printf("lines flushed    : %llu\n", stat(stats::kNvramLinesFlushed));
    std::printf("persist barriers : %llu\n", stat(stats::kPersistBarriers));
    std::printf("heap calls       : %llu\n", stat(stats::kHeapCalls));
    std::printf("flash blocks     : %llu (journal %llu)\n",
                stat(stats::kBlocksWritten),
                stat(stats::kJournalBlocksWritten));
    std::printf("fsyncs           : %llu\n", stat(stats::kFsyncs));
    std::printf("checkpoints      : %llu\n", stat(stats::kCheckpoints));
    return 0;
}
