/**
 * @file
 * A small "Android contacts app" built on the public API -- the kind
 * of workload the paper's introduction motivates (SQLite managing
 * application data on a phone). Contacts are serialized into the
 * rowid-keyed table; the app syncs batches of edits in transactions
 * and compares the I/O bill of NVWAL against WAL-on-flash.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "db/database.hpp"

using namespace nvwal;

namespace
{

/** A flat, fixed-format contact record (128 bytes). */
struct Contact
{
    char name[48];
    char phone[24];
    char email[48];
    std::uint64_t lastContacted;

    static Contact
    make(const std::string &name, const std::string &phone,
         const std::string &email, std::uint64_t ts)
    {
        Contact c{};
        std::snprintf(c.name, sizeof(c.name), "%s", name.c_str());
        std::snprintf(c.phone, sizeof(c.phone), "%s", phone.c_str());
        std::snprintf(c.email, sizeof(c.email), "%s", email.c_str());
        c.lastContacted = ts;
        return c;
    }

    ConstByteSpan
    bytes() const
    {
        return ConstByteSpan(reinterpret_cast<const std::uint8_t *>(this),
                             sizeof(Contact));
    }

    static Contact
    parse(ConstByteSpan raw)
    {
        Contact c{};
        NVWAL_ASSERT(raw.size() == sizeof(Contact));
        std::memcpy(&c, raw.data(), sizeof(Contact));
        return c;
    }
};

void
runApp(Env &env, Database &db)
{
    // Import a phone book in one transaction (app install / sync).
    NVWAL_CHECK_OK(db.begin());
    const char *names[] = {"Ada Lovelace", "Alan Turing", "Grace Hopper",
                           "Edsger Dijkstra", "Barbara Liskov",
                           "Donald Knuth", "Frances Allen",
                           "John Backus", "Niklaus Wirth", "Jim Gray"};
    RowId id = 1;
    for (const char *name : names) {
        const Contact c = Contact::make(
            name, "+82-10-555-" + std::to_string(1000 + id),
            std::string(name).substr(0, 3) + "@example.org", 0);
        NVWAL_CHECK_OK(db.insert(id++, c.bytes()));
    }
    NVWAL_CHECK_OK(db.commit());

    // Daily usage: many small single-row transactions (the workload
    // shape that makes SQLite I/O-bound on flash).
    Rng rng(7);
    for (std::uint64_t day = 1; day <= 200; ++day) {
        const RowId who = static_cast<RowId>(1 + rng.nextBelow(10));
        ByteBuffer raw;
        NVWAL_CHECK_OK(db.get(who, &raw));
        Contact c = Contact::parse(ConstByteSpan(raw.data(), raw.size()));
        c.lastContacted = day;
        NVWAL_CHECK_OK(db.update(who, c.bytes()));
    }

    // Render the most recently contacted people.
    struct Entry
    {
        std::uint64_t ts;
        std::string name;
    };
    std::vector<Entry> recent;
    NVWAL_CHECK_OK(db.scan(INT64_MIN, INT64_MAX,
                           [&](RowId, ConstByteSpan v) {
                               const Contact c = Contact::parse(v);
                               recent.push_back(
                                   Entry{c.lastContacted, c.name});
                               return true;
                           }));
    std::sort(recent.begin(), recent.end(),
              [](const Entry &a, const Entry &b) { return a.ts > b.ts; });
    std::printf("  recently contacted:\n");
    for (std::size_t i = 0; i < 3 && i < recent.size(); ++i) {
        std::printf("    %-20s (day %llu)\n", recent[i].name.c_str(),
                    static_cast<unsigned long long>(recent[i].ts));
    }

    std::printf("  simulated time: %.2f ms, flash blocks written: %llu, "
                "NVRAM bytes logged: %llu\n",
                static_cast<double>(env.clock.now()) / 1e6,
                static_cast<unsigned long long>(
                    env.stats.get(stats::kBlocksWritten)),
                static_cast<unsigned long long>(
                    env.stats.get(stats::kNvramBytesLogged)));
}

} // namespace

int
main()
{
    // The same app on two storage stacks.
    struct Setup
    {
        const char *label;
        WalMode mode;
    };
    const Setup setups[] = {
        {"WAL on eMMC flash (stock SQLite)", WalMode::FileStock},
        {"NVWAL on NVRAM (UH+LS+Diff)", WalMode::Nvwal},
    };

    for (const Setup &setup : setups) {
        std::printf("\n== contacts app over %s ==\n", setup.label);
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5(2000);
        Env env(env_config);
        DbConfig config;
        config.name = "contacts.db";
        config.walMode = setup.mode;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        runApp(env, *db);
    }
    std::printf("\nSame app, same data -- the NVWAL run replaces the "
                "flash fsync bill with byte-granularity NVRAM logging.\n");
    return 0;
}
