/**
 * @file
 * Tests for overflow-page chains: values larger than the local
 * payload limit spill to page chains (SQLite-style), and must behave
 * identically to local values under reads, scans, updates, deletes,
 * splits, reopen, power failure and space reclamation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class OverflowTest : public ::testing::Test
{
  protected:
    OverflowTest() : env(makeEnvConfig())
    {
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        maxLocal = PageView::maxLocalPayload(db->pager().usableSize());
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::nexus5();
        c.nvramBytes = 64 << 20;
        c.flashBlocks = 8192;
        return c;
    }

    void
    reopen()
    {
        DbConfig config = db->config();
        db.reset();
        NVWAL_CHECK_OK(Database::open(env, config, &db));
    }

    Env env;
    std::unique_ptr<Database> db;
    std::uint32_t maxLocal = 0;
};

TEST_F(OverflowTest, BoundarySizesRoundTrip)
{
    // Exactly local, one byte over, a full chain page, and sizes
    // straddling each chain-page boundary.
    const std::uint32_t chunk = db->pager().usableSize() - 4;
    const std::size_t sizes[] = {
        maxLocal,     maxLocal + 1,      maxLocal + chunk - 1,
        maxLocal + chunk, maxLocal + chunk + 1, maxLocal + 3 * chunk,
        65535,
    };
    RowId key = 1;
    for (std::size_t size : sizes) {
        const ByteBuffer v = testutil::makeValue(size, size);
        NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
        ByteBuffer out;
        NVWAL_CHECK_OK(db->get(key, &out));
        EXPECT_EQ(out, v) << "size " << size;
        ++key;
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(OverflowTest, OversizedValueRejected)
{
    ByteBuffer v(65536, 0x1);
    EXPECT_EQ(db->insert(1, testutil::spanOf(v)).code(),
              StatusCode::InvalidArgument);
}

TEST_F(OverflowTest, LocalValuesUseNoExtraPages)
{
    const std::uint32_t before = db->pager().pageCount();
    NVWAL_CHECK_OK(db->insert(
        1, testutil::spanOf(testutil::makeValue(maxLocal, 1))));
    EXPECT_EQ(db->pager().pageCount(), before);
}

TEST_F(OverflowTest, ChainLengthMatchesValueSize)
{
    const std::uint32_t chunk = db->pager().usableSize() - 4;
    const std::uint32_t before = db->pager().pageCount();
    const std::size_t size = maxLocal + 2 * chunk + 10;  // 3 pages
    NVWAL_CHECK_OK(
        db->insert(1, testutil::spanOf(testutil::makeValue(size, 2))));
    EXPECT_EQ(db->pager().pageCount(), before + 3);
}

TEST_F(OverflowTest, DeleteFreesTheChain)
{
    const std::size_t size = 20000;
    NVWAL_CHECK_OK(
        db->insert(1, testutil::spanOf(testutil::makeValue(size, 3))));
    const std::uint32_t pages = db->pager().pageCount();
    EXPECT_EQ(db->pager().freePageCount(), 0u);
    NVWAL_CHECK_OK(db->remove(1));
    EXPECT_GT(db->pager().freePageCount(), 3u);
    EXPECT_EQ(db->pager().pageCount(), pages);
    // The freed chain is reused by the next large value.
    NVWAL_CHECK_OK(
        db->insert(2, testutil::spanOf(testutil::makeValue(size, 4))));
    EXPECT_EQ(db->pager().pageCount(), pages);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(OverflowTest, UpdateShrinkAndGrow)
{
    const ByteBuffer big = testutil::makeValue(30000, 5);
    const ByteBuffer small(50, 0x42);
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(big)));
    NVWAL_CHECK_OK(db->update(1, testutil::spanOf(small)));
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, small);
    EXPECT_GT(db->pager().freePageCount(), 5u);  // chain reclaimed

    const ByteBuffer big2 = testutil::makeValue(40000, 6);
    NVWAL_CHECK_OK(db->update(1, testutil::spanOf(big2)));
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, big2);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(OverflowTest, ScanAssemblesOverflowValues)
{
    std::map<RowId, ByteBuffer> model;
    for (RowId k = 1; k <= 10; ++k) {
        const std::size_t size = (k % 2 == 0) ? 15000 : 60;
        model[k] = testutil::makeValue(size, static_cast<std::uint64_t>(k));
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(model[k])));
    }
    std::map<RowId, ByteBuffer> scanned;
    NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                            [&](RowId k, ConstByteSpan v) {
                                scanned[k] = ByteBuffer(v.begin(), v.end());
                                return true;
                            }));
    EXPECT_EQ(scanned, model);
}

TEST_F(OverflowTest, SplitsDoNotDisturbChains)
{
    // Enough mixed-size records to force leaf splits; overflow
    // payloads must remain intact because splits copy only the
    // in-leaf cell (prefix + chain pointer).
    std::map<RowId, ByteBuffer> model;
    Rng rng(77);
    for (RowId k = 1; k <= 120; ++k) {
        const std::size_t size =
            rng.nextBool(0.3) ? 5000 + rng.nextBelow(10000)
                              : 30 + rng.nextBelow(300);
        model[k] = testutil::makeValue(size, rng.next());
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(model[k])));
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
    for (const auto &[k, v] : model) {
        ByteBuffer out;
        NVWAL_CHECK_OK(db->get(k, &out));
        EXPECT_EQ(out, v) << k;
    }
}

TEST_F(OverflowTest, OverflowValuesSurviveReopenAndPowerFailure)
{
    const ByteBuffer v1 = testutil::makeValue(25000, 8);
    const ByteBuffer v2 = testutil::makeValue(48000, 9);
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(v1)));
    NVWAL_CHECK_OK(db->insert(2, testutil::spanOf(v2)));
    reopen();
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, v1);

    env.powerFail(FailurePolicy::Pessimistic);
    DbConfig config = db->config();
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->get(2, &out));
    EXPECT_EQ(out, v2);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(OverflowTest, CheckpointPersistsChains)
{
    const ByteBuffer v = testutil::makeValue(33000, 10);
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(v)));
    NVWAL_CHECK_OK(db->checkpoint());
    env.powerFail(FailurePolicy::Pessimistic);
    DbConfig config = db->config();
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, v);
}

TEST_F(OverflowTest, CrashMidCommitIsAtomicForOverflowValues)
{
    // A transaction inserting a chained value either lands whole or
    // not at all, across every injection point.
    faultsim::SweepConfig config;
    config.env = makeEnvConfig();
    config.env.nvramBytes = 16 << 20;
    config.db.walMode = WalMode::Nvwal;
    const char *anchor = "anchor";
    config.warmup.insert(
        1, ByteBuffer(anchor, anchor + std::strlen(anchor)));
    config.workload.phase("overflow insert")
        .insert(2, faultsim::Workload::valueFor(18000, 11));
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.maxPoints = 40;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.crashes, 0u);
}

TEST_F(OverflowTest, RollbackDiscardsChainAllocations)
{
    const std::uint32_t pages_before = db->pager().pageCount();
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(
        db->insert(1, testutil::spanOf(testutil::makeValue(30000, 12))));
    NVWAL_CHECK_OK(db->rollback());
    EXPECT_EQ(db->pager().pageCount(), pages_before);
    ByteBuffer out;
    EXPECT_TRUE(db->get(1, &out).isNotFound());
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(OverflowTest, MixedSizeOracle)
{
    Rng rng(99);
    std::map<RowId, ByteBuffer> model;
    for (int step = 0; step < 600; ++step) {
        const RowId key = static_cast<RowId>(rng.nextBelow(80));
        const bool exists = model.count(key) > 0;
        const std::size_t size = rng.nextBool(0.25)
                                     ? 1000 + rng.nextBelow(40000)
                                     : 1 + rng.nextBelow(400);
        const ByteBuffer v = testutil::makeValue(size, rng.next());
        switch (rng.nextBelow(3)) {
          case 0:
            if (!exists) {
                NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
                model[key] = v;
            }
            break;
          case 1:
            if (exists) {
                NVWAL_CHECK_OK(db->update(key, testutil::spanOf(v)));
                model[key] = v;
            }
            break;
          default:
            if (exists) {
                NVWAL_CHECK_OK(db->remove(key));
                model.erase(key);
            }
            break;
        }
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
    for (const auto &[k, v] : model) {
        ByteBuffer out;
        NVWAL_CHECK_OK(db->get(k, &out));
        EXPECT_EQ(out, v) << k;
    }
}

} // namespace
} // namespace nvwal
