/**
 * @file
 * Interface-conformance suite: every WriteAheadLog implementation
 * (rollback journal, stock WAL, optimized WAL, and all NVWAL
 * variants) must satisfy the same behavioural contract the Database
 * layer depends on:
 *
 *  - writeFrames(commit=true) makes the frames readable (readPage)
 *    or directly durable in the .db file;
 *  - the latest committed version of a page wins;
 *  - recover() on a fresh object reproduces the committed state and
 *    reports the last committed database size;
 *  - checkpoint() moves everything into the .db file, after which
 *    readPage returns false and the db file alone suffices;
 *  - framesSinceCheckpoint() is zero after a checkpoint.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "db/env.hpp"
#include "core/nvwal_log.hpp"
#include "wal/file_wal.hpp"
#include "wal/rollback_journal.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;

struct Fixture
{
    std::unique_ptr<Env> env;
    std::unique_ptr<DbFile> dbFile;
    std::unique_ptr<WriteAheadLog> wal;
};

using Factory = std::function<std::unique_ptr<WriteAheadLog>(
    Env &, DbFile &, std::uint32_t reserved)>;

struct Impl
{
    const char *label;
    std::uint32_t reserved;
    Factory make;
};

Impl
implFor(const std::string &which)
{
    if (which == "Journal") {
        return Impl{"Journal", 0,
                    [](Env &env, DbFile &db_file, std::uint32_t) {
                        return std::unique_ptr<WriteAheadLog>(
                            new RollbackJournal(env.fs, "t.db-journal",
                                                db_file, kPageSize,
                                                env.stats));
                    }};
    }
    if (which == "StockWal" || which == "OptimizedWal") {
        const bool optimized = which == "OptimizedWal";
        return Impl{
            optimized ? "OptimizedWal" : "StockWal",
            optimized ? 24u : 0u,
            [optimized](Env &env, DbFile &db_file,
                        std::uint32_t reserved) {
                FileWalConfig config;
                config.optimized = optimized;
                return std::unique_ptr<WriteAheadLog>(
                    new FileWal(env.fs, "t.db-wal", db_file, kPageSize,
                                reserved, config, env.stats));
            }};
    }
    // NVWAL variants: "Nvwal_<E|LS|CS>_<diff01>_<uh01>"
    NvwalConfig config;
    config.syncMode = which.find("_E_") != std::string::npos
                          ? SyncMode::Eager
                      : which.find("_CS_") != std::string::npos
                          ? SyncMode::ChecksumAsync
                          : SyncMode::Lazy;
    config.diffLogging = which.find("diff1") != std::string::npos;
    config.userHeap = which.find("uh1") != std::string::npos;
    return Impl{"Nvwal", 24,
                [config](Env &env, DbFile &db_file,
                         std::uint32_t reserved) {
                    return std::unique_ptr<WriteAheadLog>(
                        new NvwalLog(env.heap, env.pmem, db_file,
                                     kPageSize, reserved, config,
                                     env.stats));
                }};
}

class WalConformance : public ::testing::TestWithParam<std::string>
{
  protected:
    WalConformance() : impl(implFor(GetParam()))
    {
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5();
        env_config.nvramBytes = 32 << 20;
        env_config.flashBlocks = 8192;
        env = std::make_unique<Env>(env_config);
        dbFile = std::make_unique<DbFile>(env->fs, "t.db", kPageSize);
        NVWAL_CHECK_OK(dbFile->open());
        // Seed the file with two pages like Pager::open does.
        ByteBuffer zero(kPageSize, 0);
        NVWAL_CHECK_OK(
            dbFile->writePage(1, ConstByteSpan(zero.data(), kPageSize)));
        NVWAL_CHECK_OK(
            dbFile->writePage(2, ConstByteSpan(zero.data(), kPageSize)));
        NVWAL_CHECK_OK(dbFile->sync());
        wal = impl.make(*env, *dbFile, impl.reserved);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(wal->recover(&db_size));
    }

    ByteBuffer
    makePage(std::uint64_t seed) const
    {
        ByteBuffer page = testutil::makeValue(kPageSize, seed);
        std::memset(page.data() + kPageSize - impl.reserved, 0,
                    impl.reserved);
        return page;
    }

    Status
    commitPages(const std::vector<std::pair<PageNo, const ByteBuffer *>>
                    &pages,
                std::uint32_t db_size)
    {
        std::vector<DirtyRanges> ranges(pages.size());
        std::vector<FrameWrite> frames;
        for (std::size_t i = 0; i < pages.size(); ++i) {
            ranges[i].mark(0, kPageSize - impl.reserved);
            frames.push_back(FrameWrite{
                pages[i].first,
                ConstByteSpan(pages[i].second->data(), kPageSize),
                &ranges[i]});
        }
        return wal->writeFrames(frames, true, db_size);
    }

    /** Latest committed page content via log-then-file. */
    ByteBuffer
    currentPage(PageNo no)
    {
        ByteBuffer out(kPageSize, 0);
        if ((wal->readPage(no, ByteSpan(out.data(), kPageSize))).isNotFound())
            NVWAL_CHECK_OK(dbFile->readPage(no, ByteSpan(out.data(),
                                                         kPageSize)));
        return out;
    }

    Impl impl;
    std::unique_ptr<Env> env;
    std::unique_ptr<DbFile> dbFile;
    std::unique_ptr<WriteAheadLog> wal;
};

TEST_P(WalConformance, CommittedFramesAreVisible)
{
    const ByteBuffer p2 = makePage(1);
    NVWAL_CHECK_OK(commitPages({{2, &p2}}, 2));
    EXPECT_EQ(currentPage(2), p2);
}

TEST_P(WalConformance, LatestCommitWins)
{
    const ByteBuffer v1 = makePage(2);
    const ByteBuffer v2 = makePage(3);
    NVWAL_CHECK_OK(commitPages({{2, &v1}}, 2));
    NVWAL_CHECK_OK(commitPages({{2, &v2}}, 2));
    EXPECT_EQ(currentPage(2), v2);
}

TEST_P(WalConformance, RecoverReproducesCommittedState)
{
    const ByteBuffer p2 = makePage(4);
    const ByteBuffer p3 = makePage(5);
    NVWAL_CHECK_OK(commitPages({{2, &p2}, {3, &p3}}, 3));

    auto fresh = impl.make(*env, *dbFile, impl.reserved);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh->recover(&db_size));
    // In-place implementations report 0 (the file itself is truth).
    if (db_size != 0) {
        EXPECT_EQ(db_size, 3u);
    }
    ByteBuffer out(kPageSize, 0);
    if ((fresh->readPage(2, ByteSpan(out.data(), kPageSize))).isNotFound())
        NVWAL_CHECK_OK(dbFile->readPage(2, ByteSpan(out.data(),
                                                    kPageSize)));
    EXPECT_EQ(out, p2);
}

TEST_P(WalConformance, CheckpointMovesEverythingToTheFile)
{
    const ByteBuffer p2 = makePage(6);
    const ByteBuffer p3 = makePage(7);
    NVWAL_CHECK_OK(commitPages({{2, &p2}, {3, &p3}}, 3));
    NVWAL_CHECK_OK(wal->checkpoint());
    EXPECT_EQ(wal->framesSinceCheckpoint(), 0u);

    ByteBuffer out(kPageSize);
    EXPECT_TRUE(wal->readPage(2, ByteSpan(out.data(), kPageSize)).isNotFound());
    NVWAL_CHECK_OK(dbFile->readPage(2, ByteSpan(out.data(), kPageSize)));
    EXPECT_EQ(out, p2);
    NVWAL_CHECK_OK(dbFile->readPage(3, ByteSpan(out.data(), kPageSize)));
    EXPECT_EQ(out, p3);
}

TEST_P(WalConformance, ManyCommitsThenRecoverThenContinue)
{
    ByteBuffer page = makePage(8);
    for (int i = 0; i < 30; ++i) {
        page[100] = static_cast<std::uint8_t>(i);
        NVWAL_CHECK_OK(commitPages({{2, &page}}, 2));
    }
    auto fresh = impl.make(*env, *dbFile, impl.reserved);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh->recover(&db_size));
    ByteBuffer out(kPageSize, 0);
    if ((fresh->readPage(2, ByteSpan(out.data(), kPageSize))).isNotFound())
        NVWAL_CHECK_OK(dbFile->readPage(2, ByteSpan(out.data(),
                                                    kPageSize)));
    EXPECT_EQ(out[100], 29);

    // The recovered object accepts further commits.
    wal = std::move(fresh);
    page[100] = 99;
    NVWAL_CHECK_OK(commitPages({{2, &page}}, 2));
    EXPECT_EQ(currentPage(2)[100], 99);
}

INSTANTIATE_TEST_SUITE_P(
    Impls, WalConformance,
    ::testing::Values("Journal", "StockWal", "OptimizedWal",
                      "Nvwal_LS_diff0_uh0", "Nvwal_LS_diff1_uh1",
                      "Nvwal_CS_diff1_uh1", "Nvwal_E_diff1_uh1"),
    [](const auto &info) {
        std::string name = info.param;
        return name;
    });

} // namespace
} // namespace nvwal
