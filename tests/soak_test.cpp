/**
 * @file
 * Whole-system soak test: one long randomized session per seed mixing
 * every feature -- multiple tables, small and overflow values,
 * explicit transactions, checkpoints, vacuum, reopens and injected
 * power failures -- against a full multi-table oracle. After every
 * crash the database must equal the committed oracle state or the
 * state including the single in-flight operation (which may have
 * become durable before the power died).
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

using TableState = std::map<RowId, ByteBuffer>;
using DbState = std::map<std::string, TableState>;

DbState
dumpAll(Database &db)
{
    DbState state;
    std::vector<std::string> names;
    NVWAL_CHECK_OK(db.listTables(&names));
    for (const std::string &name : names) {
        Table *table;
        NVWAL_CHECK_OK(db.openTable(name, &table));
        TableState &ts = state[name];
        NVWAL_CHECK_OK(table->scan(INT64_MIN, INT64_MAX,
                                   [&](RowId k, ConstByteSpan v) {
                                       ts[k] =
                                           ByteBuffer(v.begin(), v.end());
                                       return true;
                                   }));
    }
    return state;
}

class Soak : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Soak, LongRandomSessionStaysConsistent)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    env_config.nvramBytes = 32 << 20;
    env_config.flashBlocks = 16384;
    env_config.seed = GetParam();
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 64;

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    Rng rng(GetParam() * 7919 + 3);

    DbState oracle;
    oracle["main"] = {};
    int table_seq = 0;

    for (int step = 0; step < 400; ++step) {
        // Pick a live table.
        std::vector<std::string> names;
        names.reserve(oracle.size());
        for (const auto &[name, state] : oracle)
            names.push_back(name);
        const std::string &tname =
            names[rng.nextBelow(names.size())];

        DbState expected = oracle;
        const int action = static_cast<int>(rng.nextBelow(20));
        bool crashed = false;

        // Maybe arm a crash for this step.
        const bool arm = rng.nextBool(0.15);
        if (arm) {
            env.nvramDevice.setScheduledCrashPolicy(
                rng.nextBool(0.5) ? FailurePolicy::Pessimistic
                                  : FailurePolicy::Adversarial,
                0.5);
            env.nvramDevice.scheduleCrashAtOp(1 + rng.nextBelow(120));
        }

        try {
            if (action < 10) {
                // Write statement on the chosen table.
                Table *table;
                NVWAL_CHECK_OK(db->openTable(tname, &table));
                const RowId key =
                    static_cast<RowId>(rng.nextBelow(300));
                const bool exists = expected[tname].count(key) > 0;
                const std::size_t size =
                    rng.nextBool(0.15) ? 800 + rng.nextBelow(20000)
                                       : 1 + rng.nextBelow(200);
                const ByteBuffer v =
                    testutil::makeValue(size, rng.next());
                if (!exists) {
                    expected[tname][key] = v;
                    NVWAL_CHECK_OK(table->insert(key,
                                                 testutil::spanOf(v)));
                } else if (rng.nextBool(0.5)) {
                    expected[tname][key] = v;
                    NVWAL_CHECK_OK(table->update(key,
                                                 testutil::spanOf(v)));
                } else {
                    expected[tname].erase(key);
                    NVWAL_CHECK_OK(table->remove(key));
                }
            } else if (action < 14) {
                // Multi-statement transaction on the default table.
                Table *table;
                NVWAL_CHECK_OK(db->openTable("main", &table));
                NVWAL_CHECK_OK(db->begin());
                for (int i = 0; i < 4; ++i) {
                    const RowId key =
                        static_cast<RowId>(500 + rng.nextBelow(200));
                    const ByteBuffer v = testutil::makeValue(
                        1 + rng.nextBelow(300), rng.next());
                    if (expected["main"].count(key)) {
                        expected["main"][key] = v;
                        NVWAL_CHECK_OK(
                            table->update(key, testutil::spanOf(v)));
                    } else {
                        expected["main"][key] = v;
                        NVWAL_CHECK_OK(
                            table->insert(key, testutil::spanOf(v)));
                    }
                }
                if (rng.nextBool(0.2)) {
                    expected = oracle;  // roll the whole txn back
                    NVWAL_CHECK_OK(db->rollback());
                } else {
                    NVWAL_CHECK_OK(db->commit());
                }
            } else if (action < 15) {
                const std::string name =
                    "t" + std::to_string(table_seq++);
                expected[name] = {};
                NVWAL_CHECK_OK(db->createTable(name));
            } else if (action < 16 && tname != "main") {
                expected.erase(tname);
                NVWAL_CHECK_OK(db->dropTable(tname));
            } else if (action < 17) {
                NVWAL_CHECK_OK(db->checkpoint());
            } else if (action < 18) {
                NVWAL_CHECK_OK(db->vacuum());
            } else {
                // Clean reopen.
                db.reset();
                NVWAL_CHECK_OK(Database::open(env, config, &db));
            }
            env.nvramDevice.scheduleCrashAtOp(0);
            oracle = expected;
        } catch (const PowerFailure &) {
            crashed = true;
            env.fs.crash();
            db.reset();
            NVWAL_CHECK_OK(Database::open(env, config, &db));
        }

        if (crashed || step % 40 == 39) {
            NVWAL_CHECK_OK(db->verifyIntegrity());
            const DbState state = dumpAll(*db);
            if (crashed) {
                const bool as_oracle = state == oracle;
                const bool as_expected = state == expected;
                ASSERT_TRUE(as_oracle || as_expected)
                    << "seed " << GetParam() << " step " << step
                    << ": state diverged after crash";
                oracle = as_expected ? expected : oracle;
            } else {
                ASSERT_EQ(state, oracle)
                    << "seed " << GetParam() << " step " << step;
            }
        }
        EXPECT_EQ(env.heap.countBlocks(BlockState::Pending), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak,
                         ::testing::Values(1001, 2002, 3003, 4004));

} // namespace
} // namespace nvwal
