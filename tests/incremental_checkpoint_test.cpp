/**
 * @file
 * Tests for incremental checkpointing: correctness under concurrent
 * commits (pages re-dirtied mid-round must be written back again
 * before truncation), crash safety at every step, and the latency
 * bound it exists for.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

EnvConfig
smallEnv()
{
    EnvConfig c;
    c.cost = CostModel::nexus5(2000);
    c.nvramBytes = 32 << 20;
    c.flashBlocks = 8192;
    return c;
}

DbConfig
incrementalConfig()
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 40;
    config.incrementalCheckpoint = true;
    config.checkpointStepPages = 4;
    return config;
}

TEST(IncrementalCheckpoint, EventuallyTruncatesUnderLoad)
{
    Env env(smallEnv());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, incrementalConfig(), &db));

    std::map<RowId, ByteBuffer> model;
    Rng rng(9);
    for (int txn = 0; txn < 400; ++txn) {
        const RowId key = static_cast<RowId>(rng.nextBelow(500));
        const ByteBuffer v =
            testutil::makeValue(1 + rng.nextBelow(200), rng.next());
        if (model.count(key)) {
            NVWAL_CHECK_OK(db->update(key, testutil::spanOf(v)));
        } else {
            NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
        }
        model[key] = v;
    }
    // The log was truncated at least once and is bounded.
    EXPECT_GE(env.stats.get(stats::kCheckpoints), 1u);
    EXPECT_LT(db->wal().framesSinceCheckpoint(), 200u);

    NVWAL_CHECK_OK(db->verifyIntegrity());
    std::map<RowId, ByteBuffer> content;
    NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                            [&](RowId k, ConstByteSpan v) {
                                content[k] = ByteBuffer(v.begin(), v.end());
                                return true;
                            }));
    EXPECT_EQ(content, model);
}

TEST(IncrementalCheckpoint, ReDirtiedPagesAreWrittenBackAgain)
{
    // Drive checkpointStep directly: start a round, then commit a
    // new version of an already-written-back page before finishing;
    // after the final truncation the .db file must hold the newest
    // version.
    Env env(smallEnv());
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.autoCheckpoint = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    // Many pages in the log.
    for (RowId k = 0; k < 400; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    bool done = false;
    NVWAL_CHECK_OK(db->wal().checkpointStep(2, &done));
    EXPECT_FALSE(done);

    // Mutate between steps (re-dirties pages, some already written).
    NVWAL_CHECK_OK(db->update(
        0, testutil::spanOf(testutil::makeValue(100, 9999))));
    NVWAL_CHECK_OK(db->update(
        399, testutil::spanOf(testutil::makeValue(100, 8888))));

    int steps = 0;
    while (!done) {
        NVWAL_CHECK_OK(db->wal().checkpointStep(2, &done));
        ASSERT_LT(++steps, 1000);
    }
    EXPECT_EQ(db->wal().framesSinceCheckpoint(), 0u);

    // Power failure: only the .db file remains; it must hold the
    // updated values.
    env.powerFail(FailurePolicy::Pessimistic);
    db.reset();
    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    ByteBuffer out;
    NVWAL_CHECK_OK(recovered->get(0, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 9999));
    NVWAL_CHECK_OK(recovered->get(399, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 8888));
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(recovered->count(&n));
    EXPECT_EQ(n, 400u);
}

TEST(IncrementalCheckpoint, CrashDuringRoundIsRecoverable)
{
    // Sweep crashes across incremental rounds (write-backs +
    // interleaved autocommit inserts); after recovery every committed
    // row must be present with its final value. Each insert outside a
    // transaction is its own commit event, so the harness oracle
    // tracks the exact per-insert durability frontier.
    faultsim::SweepConfig config;
    config.env = smallEnv();
    config.db = incrementalConfig();
    for (RowId k = 0; k < 40; ++k) {
        config.warmup.insert(
            k, faultsim::Workload::valueFor(
                   100, static_cast<std::uint64_t>(k) * 7 + 1));
    }
    config.workload.phase("incremental rounds");
    for (RowId k = 40; k < 120; ++k) {
        config.workload.insert(
            k, faultsim::Workload::valueFor(
                   100, static_cast<std::uint64_t>(k) * 7 + 1));
    }
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.maxPoints = 50;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.crashes, 0u);
}

TEST(IncrementalCheckpoint, BoundsCommitLatencySpike)
{
    // A per-step fsync has a fixed floor (journal commit + device
    // barrier), so the bound shows against checkpoints large enough
    // to dwarf it -- which is exactly when the spike matters.
    auto maxCommitLatency = [](bool incremental) {
        Env env(smallEnv());
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.checkpointThreshold = 400;
        config.incrementalCheckpoint = incremental;
        config.checkpointStepPages = 2;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        SimTime worst = 0;
        Rng rng(3);
        for (RowId k = 0; k < 1200; ++k) {
            ByteBuffer v(100, static_cast<std::uint8_t>(rng.next()));
            const SimTime start = env.clock.now();
            NVWAL_CHECK_OK(
                db->insert(k, ConstByteSpan(v.data(), v.size())));
            worst = std::max(worst, env.clock.now() - start);
        }
        return worst;
    };
    const SimTime full = maxCommitLatency(false);
    const SimTime incremental = maxCommitLatency(true);
    EXPECT_LT(incremental, full / 2);
}

} // namespace
} // namespace nvwal
