/**
 * @file
 * Property-based tests: long random workloads against a std::map
 * oracle, across WAL modes, page geometries and seeds, with
 * mid-stream reopens, checkpoints and (for the strict schemes)
 * injected power failures.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

struct PropertyParam
{
    WalMode mode;
    SyncMode sync;
    bool diff;
    bool userHeap;
    std::uint64_t seed;
    const char *label;
};

DbConfig
dbConfigFor(const PropertyParam &p)
{
    DbConfig config;
    config.walMode = p.mode;
    config.nvwal.syncMode = p.sync;
    config.nvwal.diffLogging = p.diff;
    config.nvwal.userHeap = p.userHeap;
    config.checkpointThreshold = 60;
    return config;
}

class RandomWorkload : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(RandomWorkload, OracleEquivalenceWithReopens)
{
    const PropertyParam param = GetParam();
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    env_config.nvramBytes = 16 << 20;
    env_config.flashBlocks = 4096;
    Env env(env_config);
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, dbConfigFor(param), &db));

    Rng rng(param.seed);
    std::map<RowId, ByteBuffer> oracle;

    for (int txn = 0; txn < 120; ++txn) {
        const bool explicit_txn = rng.nextBool(0.7);
        std::map<RowId, ByteBuffer> staged = oracle;
        if (explicit_txn)
            NVWAL_CHECK_OK(db->begin());
        const int ops = 1 + static_cast<int>(rng.nextBelow(6));
        for (int i = 0; i < ops; ++i) {
            const RowId key = static_cast<RowId>(rng.nextBelow(400));
            const bool exists = staged.count(key) > 0;
            const ByteBuffer value =
                testutil::makeValue(1 + rng.nextBelow(180), rng.next());
            switch (rng.nextBelow(4)) {
              case 0: {
                const Status s = db->insert(key, testutil::spanOf(value));
                EXPECT_EQ(s.isOk(), !exists);
                if (s.isOk())
                    staged[key] = value;
                break;
              }
              case 1: {
                const Status s = db->update(key, testutil::spanOf(value));
                EXPECT_EQ(s.isOk(), exists);
                if (s.isOk())
                    staged[key] = value;
                break;
              }
              case 2: {
                const Status s = db->remove(key);
                EXPECT_EQ(s.isOk(), exists);
                if (s.isOk())
                    staged.erase(key);
                break;
              }
              default: {
                ByteBuffer out;
                const Status s = db->get(key, &out);
                EXPECT_EQ(s.isOk(), exists);
                if (exists) {
                    EXPECT_EQ(out, staged[key]);
                }
                break;
              }
            }
            if (!explicit_txn) {
                // Autocommit: each successful statement is durable.
                oracle = staged;
            }
        }
        if (explicit_txn) {
            if (rng.nextBool(0.15)) {
                NVWAL_CHECK_OK(db->rollback());
            } else {
                NVWAL_CHECK_OK(db->commit());
                oracle = staged;
            }
        }

        if (rng.nextBool(0.05))
            NVWAL_CHECK_OK(db->checkpoint());
        if (rng.nextBool(0.04)) {
            db.reset();
            NVWAL_CHECK_OK(Database::open(env, dbConfigFor(param), &db));
        }
        if (txn % 30 == 29)
            NVWAL_CHECK_OK(db->verifyIntegrity());
    }

    NVWAL_CHECK_OK(db->verifyIntegrity());
    std::map<RowId, ByteBuffer> content;
    NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                            [&](RowId k, ConstByteSpan v) {
                                content[k] = ByteBuffer(v.begin(), v.end());
                                return true;
                            }));
    EXPECT_EQ(content, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, RandomWorkload,
    ::testing::Values(
        PropertyParam{WalMode::FileStock, SyncMode::Lazy, true, true, 1,
                      "Stock_s1"},
        PropertyParam{WalMode::FileOptimized, SyncMode::Lazy, true, true,
                      2, "Opt_s2"},
        PropertyParam{WalMode::Nvwal, SyncMode::Lazy, true, true, 3,
                      "UHLSDiff_s3"},
        PropertyParam{WalMode::Nvwal, SyncMode::Lazy, true, true, 4,
                      "UHLSDiff_s4"},
        PropertyParam{WalMode::Nvwal, SyncMode::Lazy, false, false, 5,
                      "LS_s5"},
        PropertyParam{WalMode::Nvwal, SyncMode::ChecksumAsync, true, true,
                      6, "UHCSDiff_s6"},
        PropertyParam{WalMode::Nvwal, SyncMode::Eager, true, true, 7,
                      "UHEDiff_s7"},
        PropertyParam{WalMode::Nvwal, SyncMode::Lazy, true, false, 8,
                      "LSDiff_s8"}),
    [](const auto &info) { return std::string(info.param.label); });

/**
 * Random workload with power failures injected at random points:
 * after each crash the recovered content must be the oracle state
 * with at most the in-flight transaction missing (strict schemes,
 * pessimistic and adversarial policies).
 */
class CrashingWorkload : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CrashingWorkload, RecoversToCommittedStateEveryTime)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    env_config.nvramBytes = 8 << 20;
    env_config.flashBlocks = 2048;
    env_config.seed = GetParam();
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 40;

    Rng rng(GetParam() * 31 + 7);
    std::map<RowId, ByteBuffer> oracle;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (int round = 0; round < 12; ++round) {
        const FailurePolicy policy = rng.nextBool(0.5)
                                         ? FailurePolicy::Pessimistic
                                         : FailurePolicy::Adversarial;
        env.nvramDevice.setScheduledCrashPolicy(policy, 0.5);
        env.nvramDevice.scheduleCrashAtOp(20 + rng.nextBelow(600));

        // `staged` always holds the content the in-flight (or just
        // committed) transaction would produce; when the crash fires
        // mid-commit the durable state may legitimately be either
        // `oracle` (aborted) or `staged` (commit landed).
        std::map<RowId, ByteBuffer> staged = oracle;
        try {
            for (int txn = 0; txn < 30; ++txn) {
                staged = oracle;
                NVWAL_CHECK_OK(db->begin());
                const int ops = 1 + static_cast<int>(rng.nextBelow(4));
                for (int i = 0; i < ops; ++i) {
                    const RowId key =
                        static_cast<RowId>(rng.nextBelow(150));
                    const ByteBuffer value = testutil::makeValue(
                        1 + rng.nextBelow(120), rng.next());
                    if (staged.count(key)) {
                        if (rng.nextBool(0.5)) {
                            NVWAL_CHECK_OK(
                                db->update(key, testutil::spanOf(value)));
                            staged[key] = value;
                        } else {
                            NVWAL_CHECK_OK(db->remove(key));
                            staged.erase(key);
                        }
                    } else {
                        NVWAL_CHECK_OK(
                            db->insert(key, testutil::spanOf(value)));
                        staged[key] = value;
                    }
                }
                NVWAL_CHECK_OK(db->commit());
                oracle = staged;
            }
            env.nvramDevice.scheduleCrashAtOp(0);
        } catch (const PowerFailure &) {
            env.fs.crash();
        }

        db.reset();
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        NVWAL_CHECK_OK(db->verifyIntegrity());

        std::map<RowId, ByteBuffer> content;
        NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                                [&](RowId k, ConstByteSpan v) {
                                    content[k] =
                                        ByteBuffer(v.begin(), v.end());
                                    return true;
                                }));
        // The crash may have hit mid-commit: the recovered state is
        // the last committed oracle state, or -- when the crash
        // fired after durability but before commit() returned --
        // the staged transaction's state. Treat the latter as
        // committed and carry it forward.
        const bool as_oracle = content == oracle;
        const bool as_staged = content == staged;
        EXPECT_TRUE(as_oracle || as_staged) << "round " << round;
        if (as_staged)
            oracle = staged;
        EXPECT_EQ(env.heap.countBlocks(BlockState::Pending), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashingWorkload,
                         ::testing::Values(101, 202, 303, 404, 505));

/** Page-size sweep: the engine works at several geometries. */
class GeometrySweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>>
{
};

TEST_P(GeometrySweep, BasicWorkloadAtGeometry)
{
    const auto [page_size, reserved] = GetParam();
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    env_config.nvramBytes = 16 << 20;
    env_config.flashBlocks = 8192;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.pageSize = page_size;
    config.reservedBytes = reserved;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (RowId k = 1; k <= 500; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(60, k))));
    }
    for (RowId k = 1; k <= 500; k += 5)
        NVWAL_CHECK_OK(db->remove(k));
    NVWAL_CHECK_OK(db->verifyIntegrity());

    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 400u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(std::make_pair(1024u, 24u),
                      std::make_pair(2048u, 0u),
                      std::make_pair(4096u, 24u),
                      std::make_pair(4096u, 64u),
                      std::make_pair(8192u, 24u)));

} // namespace
} // namespace nvwal
