/**
 * @file
 * Unit tests for the block device and the EXT4-ordered-mode
 * journaling file system model.
 */

#include <gtest/gtest.h>

#include "fs/journaling_fs.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class FsTest : public ::testing::Test
{
  protected:
    FsTest()
        : cost(CostModel::nexus5()),
          device(1 << 14, cost.blockSize, clock, cost, stats),
          fs(device, clock, cost, stats, 64)
    {}

    SimClock clock;
    MetricsRegistry stats;
    CostModel cost;
    BlockDevice device;
    JournalingFs fs;
};

TEST_F(FsTest, CreateExistsRemove)
{
    EXPECT_FALSE(fs.exists("a.db"));
    NVWAL_CHECK_OK(fs.create("a.db"));
    EXPECT_TRUE(fs.exists("a.db"));
    EXPECT_FALSE(fs.create("a.db").isOk());
    NVWAL_CHECK_OK(fs.remove("a.db"));
    EXPECT_FALSE(fs.exists("a.db"));
}

TEST_F(FsTest, WriteReadRoundTrip)
{
    const ByteBuffer data = testutil::makeValue(10000, 1);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    EXPECT_EQ(fs.fileSize("f"), 10000u);
    ByteBuffer out(10000);
    NVWAL_CHECK_OK(fs.pread("f", 0, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, data);
}

TEST_F(FsTest, UnalignedOverwrite)
{
    ByteBuffer base(9000, 0x11);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(base)));
    const ByteBuffer patch = testutil::makeValue(100, 2);
    NVWAL_CHECK_OK(fs.pwrite("f", 4090, testutil::spanOf(patch)));

    ByteBuffer out(9000);
    NVWAL_CHECK_OK(fs.pread("f", 0, ByteSpan(out.data(), out.size())));
    for (std::size_t i = 0; i < 9000; ++i) {
        if (i >= 4090 && i < 4190)
            EXPECT_EQ(out[i], patch[i - 4090]) << i;
        else
            EXPECT_EQ(out[i], 0x11) << i;
    }
}

TEST_F(FsTest, ReadPastEndFails)
{
    ByteBuffer data(100, 0x2);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    ByteBuffer out(200);
    EXPECT_FALSE(fs.pread("f", 0, ByteSpan(out.data(), 200)).isOk());
    EXPECT_FALSE(fs.pread("missing", 0, ByteSpan(out.data(), 1)).isOk());
}

TEST_F(FsTest, UnsyncedDataIsLostOnCrash)
{
    const ByteBuffer data = testutil::makeValue(4096, 3);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    fs.crash();
    EXPECT_FALSE(fs.exists("f"));  // never fsynced: no durable inode
}

TEST_F(FsTest, SyncedDataSurvivesCrash)
{
    const ByteBuffer data = testutil::makeValue(8192, 4);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    NVWAL_CHECK_OK(fs.fsync("f"));
    // More writes after the sync...
    const ByteBuffer extra = testutil::makeValue(4096, 5);
    NVWAL_CHECK_OK(fs.pwrite("f", 8192, testutil::spanOf(extra)));
    fs.crash();

    EXPECT_TRUE(fs.exists("f"));
    EXPECT_EQ(fs.fileSize("f"), 8192u);  // size as of the last fsync
    ByteBuffer out(8192);
    NVWAL_CHECK_OK(fs.pread("f", 0, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, data);
}

TEST_F(FsTest, AppendingFsyncJournalsAllocation)
{
    // Ordered-mode journal: appending writes journals descriptor +
    // inode + bitmap + group descriptor + commit = 5 blocks.
    const ByteBuffer data = testutil::makeValue(4096, 6);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    const std::uint64_t before = stats.get(stats::kJournalBlocksWritten);
    NVWAL_CHECK_OK(fs.fsync("f"));
    EXPECT_EQ(stats.get(stats::kJournalBlocksWritten) - before, 5u);
}

TEST_F(FsTest, PreallocatedWriteJournalsLess)
{
    // The paper's pre-allocation optimization: writing into already
    // allocated blocks only journals the inode update (3 blocks).
    NVWAL_CHECK_OK(fs.create("f"));
    NVWAL_CHECK_OK(fs.fallocate("f", 16 * 4096));
    NVWAL_CHECK_OK(fs.fsync("f"));  // absorb the allocation journal

    const ByteBuffer data = testutil::makeValue(4096, 7);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    const std::uint64_t before = stats.get(stats::kJournalBlocksWritten);
    NVWAL_CHECK_OK(fs.fsync("f"));
    EXPECT_EQ(stats.get(stats::kJournalBlocksWritten) - before, 3u);
}

TEST_F(FsTest, FsyncChargesBarrierCost)
{
    ByteBuffer data(4096, 0xEE);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    const SimTime before = clock.now();
    NVWAL_CHECK_OK(fs.fsync("f"));
    // 1 data block + 5 journal blocks + barrier.
    EXPECT_GE(clock.now() - before,
              6 * cost.blockProgramNs + cost.fsyncBaseNs);
    EXPECT_EQ(stats.get(stats::kFsyncs), 1u);
}

TEST_F(FsTest, TruncateShrinksAndFreesBlocks)
{
    const ByteBuffer data = testutil::makeValue(16384, 8);
    NVWAL_CHECK_OK(fs.pwrite("f", 0, testutil::spanOf(data)));
    NVWAL_CHECK_OK(fs.fsync("f"));
    NVWAL_CHECK_OK(fs.truncate("f", 4096));
    EXPECT_EQ(fs.fileSize("f"), 4096u);
    EXPECT_EQ(fs.allocatedSize("f"), 4096u);
    // Freed blocks get reused by the next allocation.
    const ByteBuffer more = testutil::makeValue(8192, 9);
    NVWAL_CHECK_OK(fs.pwrite("g", 0, testutil::spanOf(more)));
    ByteBuffer out(8192);
    NVWAL_CHECK_OK(fs.pread("g", 0, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, more);
}

TEST_F(FsTest, WriteTraceTagsStreams)
{
    device.setTracing(true);
    const ByteBuffer data = testutil::makeValue(4096, 10);
    NVWAL_CHECK_OK(fs.pwrite("app.db", 0, testutil::spanOf(data)));
    NVWAL_CHECK_OK(fs.fsync("app.db"));
    NVWAL_CHECK_OK(fs.pwrite("app.db-wal", 0, testutil::spanOf(data)));
    NVWAL_CHECK_OK(fs.fsync("app.db-wal"));

    bool saw_db = false;
    bool saw_wal = false;
    bool saw_journal = false;
    for (const TraceEntry &e : device.trace()) {
        saw_db = saw_db || e.tag == IoTag::DbFile;
        saw_wal = saw_wal || e.tag == IoTag::WalFile;
        saw_journal = saw_journal || e.tag == IoTag::Journal;
    }
    EXPECT_TRUE(saw_db);
    EXPECT_TRUE(saw_wal);
    EXPECT_TRUE(saw_journal);
}

TEST_F(FsTest, AllocatedSizeTracksFallocate)
{
    NVWAL_CHECK_OK(fs.create("f"));
    EXPECT_EQ(fs.allocatedSize("f"), 0u);
    NVWAL_CHECK_OK(fs.fallocate("f", 10000));
    EXPECT_EQ(fs.allocatedSize("f"), 3u * 4096u);
    EXPECT_EQ(fs.fileSize("f"), 0u);  // fallocate does not change size
}

} // namespace
} // namespace nvwal
