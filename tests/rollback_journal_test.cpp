/**
 * @file
 * Tests for the rollback-journal (DELETE mode) baseline: commit
 * protocol, recovery from every crash window, and the fsync/I-O
 * profile the paper's introduction contrasts WAL against.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "wal/rollback_journal.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

EnvConfig
nexusEnv()
{
    EnvConfig c;
    c.cost = CostModel::nexus5();
    c.nvramBytes = 8 << 20;
    c.flashBlocks = 4096;
    return c;
}

DbConfig
journalConfig()
{
    DbConfig config;
    config.walMode = WalMode::RollbackJournal;
    return config;
}

TEST(RollbackJournal, BasicCommitAndReopen)
{
    Env env(nexusEnv());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, journalConfig(), &db));
    for (RowId k = 1; k <= 100; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());

    db.reset();
    std::unique_ptr<Database> reopened;
    NVWAL_CHECK_OK(Database::open(env, journalConfig(), &reopened));
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(reopened->count(&n));
    EXPECT_EQ(n, 100u);
    ByteBuffer out;
    NVWAL_CHECK_OK(reopened->get(42, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 42));
}

TEST(RollbackJournal, CommittedDataIsDurableWithoutCheckpoints)
{
    // Journal mode writes pages in place: a crash right after commit
    // loses nothing even though no checkpoint ever runs.
    Env env(nexusEnv());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, journalConfig(), &db));
    NVWAL_CHECK_OK(db->insert(1, "persisted"));
    EXPECT_EQ(db->wal().framesSinceCheckpoint(), 0u);
    env.fs.crash();

    db.reset();
    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, journalConfig(), &recovered));
    ByteBuffer out;
    NVWAL_CHECK_OK(recovered->get(1, &out));
    EXPECT_EQ(out, toBytes("persisted"));
}

TEST(RollbackJournal, RollsBackFromSurvivingJournal)
{
    // Simulate a crash between phase 2 (db overwritten) and phase 3
    // (journal deleted): drive the journal object directly.
    Env env(nexusEnv());
    DbFile db_file(env.fs, "t.db", 4096);
    NVWAL_CHECK_OK(db_file.open());
    Pager pager(db_file, 4096, 0);
    NVWAL_CHECK_OK(pager.open());
    NVWAL_CHECK_OK(db_file.sync());

    // Old content of page 2.
    ByteBuffer old_page(4096);
    NVWAL_CHECK_OK(db_file.readPage(2, ByteSpan(old_page.data(), 4096)));

    // Phase 1 by hand: journal the pre-image, fsync.
    std::uint8_t header[RollbackJournal::kHeaderSize];
    std::memset(header, 0, sizeof(header));
    storeU64(header, RollbackJournal::kMagic);
    storeU32(header + 8, db_file.pageCount());
    storeU32(header + 12, 1);
    NVWAL_CHECK_OK(env.fs.pwrite("t.db-journal", 0,
                                 ConstByteSpan(header, sizeof(header))));
    ByteBuffer record(4 + 4096);
    storeU32(record.data(), 2);
    std::memcpy(record.data() + 4, old_page.data(), 4096);
    NVWAL_CHECK_OK(
        env.fs.pwrite("t.db-journal", RollbackJournal::kHeaderSize,
                      ConstByteSpan(record.data(), record.size())));
    NVWAL_CHECK_OK(env.fs.fsync("t.db-journal"));

    // Phase 2: clobber page 2 in the database file.
    ByteBuffer clobber(4096, 0xEE);
    NVWAL_CHECK_OK(
        db_file.writePage(2, ConstByteSpan(clobber.data(), 4096)));
    NVWAL_CHECK_OK(db_file.sync());

    // Crash before phase 3; recovery must restore the pre-image.
    env.fs.crash();
    RollbackJournal journal(env.fs, "t.db-journal", db_file, 4096,
                            env.stats);
    std::uint32_t db_size = 9;
    NVWAL_CHECK_OK(journal.recover(&db_size));
    EXPECT_EQ(db_size, 0u);
    EXPECT_FALSE(env.fs.exists("t.db-journal"));
    ByteBuffer now(4096);
    NVWAL_CHECK_OK(db_file.readPage(2, ByteSpan(now.data(), 4096)));
    EXPECT_EQ(now, old_page);
}

TEST(RollbackJournal, TornJournalIsDiscarded)
{
    // A journal whose fsync never completed (shorter than its record
    // count claims) means the database was never modified: recovery
    // must discard it and leave the database alone.
    Env env(nexusEnv());
    DbFile db_file(env.fs, "t.db", 4096);
    NVWAL_CHECK_OK(db_file.open());
    Pager pager(db_file, 4096, 0);
    NVWAL_CHECK_OK(pager.open());
    NVWAL_CHECK_OK(db_file.sync());
    ByteBuffer before(4096);
    NVWAL_CHECK_OK(db_file.readPage(2, ByteSpan(before.data(), 4096)));

    std::uint8_t header[RollbackJournal::kHeaderSize];
    std::memset(header, 0, sizeof(header));
    storeU64(header, RollbackJournal::kMagic);
    storeU32(header + 8, db_file.pageCount());
    storeU32(header + 12, 5);  // claims 5 records, has none
    NVWAL_CHECK_OK(env.fs.pwrite("t.db-journal", 0,
                                 ConstByteSpan(header, sizeof(header))));
    NVWAL_CHECK_OK(env.fs.fsync("t.db-journal"));

    RollbackJournal journal(env.fs, "t.db-journal", db_file, 4096,
                            env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(journal.recover(&db_size));
    EXPECT_FALSE(env.fs.exists("t.db-journal"));
    ByteBuffer after(4096);
    NVWAL_CHECK_OK(db_file.readPage(2, ByteSpan(after.data(), 4096)));
    EXPECT_EQ(after, before);
}

TEST(RollbackJournal, AbortedGrowthIsTruncatedAway)
{
    // A transaction that grew the file and then rolled back must not
    // leave the file longer.
    Env env(nexusEnv());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, journalConfig(), &db));
    for (RowId k = 1; k <= 30; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    const std::uint64_t size_before = env.fs.fileSize("app.db");

    NVWAL_CHECK_OK(db->begin());
    for (RowId k = 100; k <= 300; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    NVWAL_CHECK_OK(db->rollback());
    EXPECT_EQ(env.fs.fileSize("app.db"), size_before);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST(RollbackJournal, NeedsMoreFsyncsAndIoThanWal)
{
    // The paper's section 1 claim: WAL improves on journal modes
    // because it needs fewer fsync() calls and touches one file.
    auto profile = [](WalMode mode) {
        Env env(nexusEnv());
        DbConfig config;
        config.walMode = mode;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        const StatsSnapshot before = env.stats.snapshot();
        const SimTime start = env.clock.now();
        for (RowId k = 1; k <= 50; ++k) {
            NVWAL_CHECK_OK(db->insert(
                k, testutil::spanOf(testutil::makeValue(100, k))));
        }
        const StatsSnapshot delta =
            MetricsRegistry::delta(before, env.stats.snapshot());
        struct Result
        {
            std::uint64_t fsyncs;
            std::uint64_t blocks;
            SimTime elapsed;
        };
        return Result{delta.count(stats::kFsyncs)
                          ? delta.at(stats::kFsyncs)
                          : 0,
                      delta.count(stats::kBlocksWritten)
                          ? delta.at(stats::kBlocksWritten)
                          : 0,
                      env.clock.now() - start};
    };

    const auto journal = profile(WalMode::RollbackJournal);
    const auto wal = profile(WalMode::FileOptimized);
    EXPECT_GE(journal.fsyncs, 3 * wal.fsyncs / 2);
    EXPECT_GT(journal.blocks, wal.blocks);
    EXPECT_GT(journal.elapsed, wal.elapsed);
}

TEST(RollbackJournal, EquivalentContentToWalModes)
{
    std::map<RowId, ByteBuffer> reference;
    bool first = true;
    for (WalMode mode : {WalMode::RollbackJournal, WalMode::FileOptimized,
                         WalMode::Nvwal}) {
        Env env(nexusEnv());
        DbConfig config;
        config.walMode = mode;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        Rng rng(2024);
        for (int txn = 0; txn < 40; ++txn) {
            NVWAL_CHECK_OK(db->begin());
            for (int i = 0; i < 4; ++i) {
                const RowId key = static_cast<RowId>(rng.nextBelow(120));
                const ByteBuffer v =
                    testutil::makeValue(1 + rng.nextBelow(150),
                                        rng.next());
                switch (rng.nextBelow(3)) {
                  case 0:
                    (void)db->insert(key, testutil::spanOf(v));
                    break;
                  case 1:
                    (void)db->update(key, testutil::spanOf(v));
                    break;
                  default:
                    (void)db->remove(key);
                    break;
                }
            }
            NVWAL_CHECK_OK(db->commit());
        }
        std::map<RowId, ByteBuffer> content;
        NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                                [&](RowId k, ConstByteSpan v) {
                                    content[k] =
                                        ByteBuffer(v.begin(), v.end());
                                    return true;
                                }));
        if (first) {
            reference = content;
            first = false;
            EXPECT_FALSE(reference.empty());
        } else {
            EXPECT_EQ(content, reference);
        }
        NVWAL_CHECK_OK(db->verifyIntegrity());
    }
}

} // namespace
} // namespace nvwal
