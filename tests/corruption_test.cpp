/**
 * @file
 * Corruption-injection (fuzz-style) tests: random byte flips in the
 * durable NVWAL media and in the WAL file must never crash recovery
 * or let corrupt data through silently -- recovery either lands on a
 * valid committed prefix (checksum chain cut) or reports Corruption.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "db/inspect.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

/** All states of the oracle after each commit, oldest first. */
using PrefixList = std::vector<std::map<RowId, ByteBuffer>>;

std::map<RowId, ByteBuffer>
dump(Database &db)
{
    std::map<RowId, ByteBuffer> content;
    NVWAL_CHECK_OK(db.scan(INT64_MIN, INT64_MAX,
                           [&](RowId k, ConstByteSpan v) {
                               content[k] = ByteBuffer(v.begin(), v.end());
                               return true;
                           }));
    return content;
}

class NvwalCorruption : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NvwalCorruption, RandomFlipsInLogPayloadYieldCommittedPrefix)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    env_config.nvramBytes = 8 << 20;
    env_config.flashBlocks = 2048;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.autoCheckpoint = false;

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    PrefixList prefixes;
    prefixes.push_back({});
    std::map<RowId, ByteBuffer> oracle;
    for (int txn = 0; txn < 12; ++txn) {
        NVWAL_CHECK_OK(db->begin());
        for (int i = 0; i < 3; ++i) {
            const RowId key = txn * 10 + i;
            const ByteBuffer v = testutil::makeValue(
                90, static_cast<std::uint64_t>(key));
            NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
            oracle[key] = v;
        }
        NVWAL_CHECK_OK(db->commit());
        prefixes.push_back(oracle);
    }
    db.reset();
    env.powerFail(FailurePolicy::Pessimistic);  // flush everything

    // Find the log's node span via the media inspector, then flip
    // random bytes inside frame payloads (not heap metadata, whose
    // integrity the heap itself owns).
    NvwalMediaReport media;
    NVWAL_CHECK_OK(collectNvwalMediaReport(env, 4096, &media));
    ASSERT_GT(media.nodes.size(), 0u);
    Rng rng(GetParam());
    const int flips = 1 + static_cast<int>(rng.nextBelow(8));
    for (int i = 0; i < flips; ++i) {
        const NodeInfo &node =
            media.nodes[rng.nextBelow(media.nodes.size())];
        const NvOffset addr =
            node.offset + 8 + rng.nextBelow(node.capacity - 8);
        std::uint8_t byte;
        env.nvramDevice.read(addr, ByteSpan(&byte, 1));
        byte ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        env.nvramDevice.write(addr, ConstByteSpan(&byte, 1));
        env.nvramDevice.flushLine(addr);
    }
    env.nvramDevice.drainPersistQueue();

    // Recovery must not crash; if it succeeds, the recovered content
    // must be one of the committed prefixes (the chain detects the
    // corruption and cuts there).
    std::unique_ptr<Database> recovered;
    const Status open = Database::open(env, config, &recovered);
    if (!open.isOk()) {
        EXPECT_TRUE(open.isCorruption()) << open.toString();
        return;
    }
    NVWAL_CHECK_OK(recovered->verifyIntegrity());
    const auto content = dump(*recovered);
    bool is_prefix = false;
    for (const auto &prefix : prefixes)
        is_prefix = is_prefix || content == prefix;
    EXPECT_TRUE(is_prefix) << "corruption leaked into recovered state";
}

INSTANTIATE_TEST_SUITE_P(Seeds, NvwalCorruption,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10, 11, 12));

class FileWalCorruption : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FileWalCorruption, RandomFlipsInWalFileYieldCommittedPrefix)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    env_config.nvramBytes = 8 << 20;
    env_config.flashBlocks = 4096;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::FileOptimized;
    config.autoCheckpoint = false;

    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    PrefixList prefixes;
    prefixes.push_back({});
    std::map<RowId, ByteBuffer> oracle;
    for (int txn = 0; txn < 10; ++txn) {
        const RowId key = txn;
        const ByteBuffer v =
            testutil::makeValue(90, static_cast<std::uint64_t>(key));
        NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
        oracle[key] = v;
        prefixes.push_back(oracle);
    }
    db.reset();

    // Flip random bytes in the WAL file past its header.
    Rng rng(GetParam());
    const std::uint64_t size = env.fs.fileSize("app.db-wal");
    ASSERT_GT(size, 4096u);
    const int flips = 1 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < flips; ++i) {
        const std::uint64_t off = 4096 + rng.nextBelow(size - 4096);
        std::uint8_t byte;
        NVWAL_CHECK_OK(env.fs.pread("app.db-wal", off, ByteSpan(&byte, 1)));
        byte ^= static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        NVWAL_CHECK_OK(
            env.fs.pwrite("app.db-wal", off, ConstByteSpan(&byte, 1)));
    }
    NVWAL_CHECK_OK(env.fs.fsync("app.db-wal"));

    std::unique_ptr<Database> recovered;
    const Status open = Database::open(env, config, &recovered);
    if (!open.isOk()) {
        EXPECT_TRUE(open.isCorruption()) << open.toString();
        return;
    }
    NVWAL_CHECK_OK(recovered->verifyIntegrity());
    const auto content = dump(*recovered);
    bool is_prefix = false;
    for (const auto &prefix : prefixes)
        is_prefix = is_prefix || content == prefix;
    EXPECT_TRUE(is_prefix) << "corruption leaked into recovered state";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileWalCorruption,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27,
                                           28));

TEST(HeaderCorruption, NvwalHeaderMagicDamageIsReported)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    env_config.nvramBytes = 8 << 20;
    env_config.flashBlocks = 2048;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, "x"));
    db.reset();
    env.powerFail(FailurePolicy::Pessimistic);

    NvOffset header_off;
    NVWAL_CHECK_OK(env.heap.getRoot("nvwal", &header_off));
    std::uint8_t garbage[8] = {0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0};
    env.nvramDevice.write(header_off, ConstByteSpan(garbage, 8));
    env.nvramDevice.flushLine(header_off);
    env.nvramDevice.drainPersistQueue();

    std::unique_ptr<Database> recovered;
    const Status open = Database::open(env, config, &recovered);
    EXPECT_TRUE(open.isCorruption()) << open.toString();
}

TEST(HeaderCorruption, DbHeaderMagicDamageIsReported)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    env_config.nvramBytes = 8 << 20;
    env_config.flashBlocks = 2048;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::FileOptimized;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, "x"));
    NVWAL_CHECK_OK(db->checkpoint());
    db.reset();

    std::uint8_t garbage[4] = {0xff, 0xff, 0xff, 0xff};
    NVWAL_CHECK_OK(
        env.fs.pwrite("app.db", 0, ConstByteSpan(garbage, 4)));
    NVWAL_CHECK_OK(env.fs.fsync("app.db"));

    std::unique_ptr<Database> recovered;
    EXPECT_FALSE(Database::open(env, config, &recovered).isOk());
}

} // namespace
} // namespace nvwal
