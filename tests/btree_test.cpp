/**
 * @file
 * Unit and property tests for the B+-tree: CRUD, splits at every
 * level, scans, and an oracle-based random-workload test.
 */

#include <gtest/gtest.h>

#include <map>

#include "btree/btree.hpp"
#include "pager/pager.hpp"
#include "db/env.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class BTreeTest : public ::testing::Test
{
  protected:
    BTreeTest()
        : env(makeEnvConfig()),
          dbFile(env.fs, "t.db", 4096),
          pager(dbFile, 4096, 24),
          tree(pager)
    {
        NVWAL_CHECK_OK(dbFile.open());
        NVWAL_CHECK_OK(pager.open());
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::nexus5();
        return c;
    }

    Status
    insertN(RowId first, RowId last, std::size_t value_size = 100)
    {
        for (RowId k = first; k <= last; ++k) {
            const ByteBuffer v = testutil::makeValue(value_size,
                                                     static_cast<std::uint64_t>(k));
            NVWAL_RETURN_IF_ERROR(tree.insert(k, testutil::spanOf(v)));
        }
        return Status::ok();
    }

    Env env;
    DbFile dbFile;
    Pager pager;
    BTree tree;
};

TEST_F(BTreeTest, EmptyTreeLookups)
{
    ByteBuffer out;
    EXPECT_TRUE(tree.get(42, &out).isNotFound());
    EXPECT_FALSE(tree.contains(42));
    std::uint64_t n = 99;
    NVWAL_CHECK_OK(tree.count(&n));
    EXPECT_EQ(n, 0u);
    NVWAL_CHECK_OK(tree.validate());
}

TEST_F(BTreeTest, InsertGetRoundTrip)
{
    const ByteBuffer v = testutil::makeValue(100, 7);
    NVWAL_CHECK_OK(tree.insert(7, testutil::spanOf(v)));
    ByteBuffer out;
    NVWAL_CHECK_OK(tree.get(7, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(tree.contains(7));
    EXPECT_FALSE(tree.contains(8));
}

TEST_F(BTreeTest, DuplicateInsertRejected)
{
    ByteBuffer v(10, 0x1);
    NVWAL_CHECK_OK(tree.insert(1, testutil::spanOf(v)));
    EXPECT_EQ(tree.insert(1, testutil::spanOf(v)).code(),
              StatusCode::InvalidArgument);
}

TEST_F(BTreeTest, RemoveAndNotFound)
{
    ByteBuffer v(10, 0x2);
    NVWAL_CHECK_OK(tree.insert(1, testutil::spanOf(v)));
    NVWAL_CHECK_OK(tree.remove(1));
    EXPECT_TRUE(tree.remove(1).isNotFound());
    EXPECT_FALSE(tree.contains(1));
}

TEST_F(BTreeTest, UpdateReplacesValue)
{
    ByteBuffer v1(100, 0x3);
    ByteBuffer v2(40, 0x4);
    NVWAL_CHECK_OK(tree.insert(5, testutil::spanOf(v1)));
    NVWAL_CHECK_OK(tree.update(5, testutil::spanOf(v2)));
    ByteBuffer out;
    NVWAL_CHECK_OK(tree.get(5, &out));
    EXPECT_EQ(out, v2);
    EXPECT_TRUE(tree.update(99, testutil::spanOf(v2)).isNotFound());
}

TEST_F(BTreeTest, LeafRootSplit)
{
    // ~36 cells of 110 bytes fit in one leaf; 50 forces a split.
    NVWAL_CHECK_OK(insertN(1, 50));
    std::uint32_t d = 0;
    NVWAL_CHECK_OK(tree.depth(&d));
    EXPECT_EQ(d, 2u);
    NVWAL_CHECK_OK(tree.validate());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(tree.count(&n));
    EXPECT_EQ(n, 50u);
    for (RowId k = 1; k <= 50; ++k)
        EXPECT_TRUE(tree.contains(k)) << k;
    EXPECT_GE(tree.counters().splits, 1u);
}

TEST_F(BTreeTest, DeepTreeSequentialInsert)
{
    // ~36 leaf cells per page and ~290 interior fan-out: 15000
    // records guarantee an interior split (depth 3).
    NVWAL_CHECK_OK(insertN(1, 15000, 100));
    std::uint32_t d = 0;
    NVWAL_CHECK_OK(tree.depth(&d));
    EXPECT_GE(d, 3u);
    NVWAL_CHECK_OK(tree.validate());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(tree.count(&n));
    EXPECT_EQ(n, 15000u);
    ByteBuffer out;
    NVWAL_CHECK_OK(tree.get(1, &out));
    NVWAL_CHECK_OK(tree.get(7500, &out));
    NVWAL_CHECK_OK(tree.get(15000, &out));
}

TEST_F(BTreeTest, ReverseOrderInsert)
{
    for (RowId k = 2000; k >= 1; --k) {
        const ByteBuffer v = testutil::makeValue(60, static_cast<std::uint64_t>(k));
        NVWAL_CHECK_OK(tree.insert(k, testutil::spanOf(v)));
    }
    NVWAL_CHECK_OK(tree.validate());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(tree.count(&n));
    EXPECT_EQ(n, 2000u);
}

TEST_F(BTreeTest, ScanRangeInOrder)
{
    NVWAL_CHECK_OK(insertN(1, 300));
    std::vector<RowId> seen;
    NVWAL_CHECK_OK(tree.scan(100, 200, [&](RowId k, ConstByteSpan) {
        seen.push_back(k);
        return true;
    }));
    ASSERT_EQ(seen.size(), 101u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], static_cast<RowId>(100 + i));
}

TEST_F(BTreeTest, ScanEarlyStop)
{
    NVWAL_CHECK_OK(insertN(1, 100));
    int visits = 0;
    NVWAL_CHECK_OK(tree.scan(1, 100, [&](RowId, ConstByteSpan) {
        return ++visits < 10;
    }));
    EXPECT_EQ(visits, 10);
}

TEST_F(BTreeTest, NegativeAndExtremeKeys)
{
    ByteBuffer v(20, 0x5);
    NVWAL_CHECK_OK(tree.insert(-100, testutil::spanOf(v)));
    NVWAL_CHECK_OK(tree.insert(0, testutil::spanOf(v)));
    NVWAL_CHECK_OK(tree.insert(INT64_MAX, testutil::spanOf(v)));
    NVWAL_CHECK_OK(tree.insert(INT64_MIN, testutil::spanOf(v)));
    EXPECT_TRUE(tree.contains(-100));
    EXPECT_TRUE(tree.contains(INT64_MAX));
    EXPECT_TRUE(tree.contains(INT64_MIN));
    std::vector<RowId> seen;
    NVWAL_CHECK_OK(tree.scan(INT64_MIN, INT64_MAX,
                             [&](RowId k, ConstByteSpan) {
                                 seen.push_back(k);
                                 return true;
                             }));
    EXPECT_EQ(seen, (std::vector<RowId>{INT64_MIN, -100, 0, INT64_MAX}));
}

TEST_F(BTreeTest, OversizedValueRejected)
{
    ByteBuffer v(tree.maxValueSize() + 1, 0x6);
    EXPECT_EQ(tree.insert(1, testutil::spanOf(v)).code(),
              StatusCode::InvalidArgument);
    ByteBuffer ok_value(tree.maxValueSize(), 0x7);
    EXPECT_TRUE(tree.insert(1, testutil::spanOf(ok_value)).isOk());
}

TEST_F(BTreeTest, VariableSizeValues)
{
    Rng rng(33);
    for (RowId k = 1; k <= 800; ++k) {
        const ByteBuffer v = testutil::makeValue(
            1 + rng.nextBelow(tree.maxValueSize() - 1), rng.next());
        NVWAL_CHECK_OK(tree.insert(k, testutil::spanOf(v)));
    }
    NVWAL_CHECK_OK(tree.validate());
}

TEST_F(BTreeTest, DeleteEverything)
{
    NVWAL_CHECK_OK(insertN(1, 1000));
    for (RowId k = 1; k <= 1000; ++k)
        NVWAL_CHECK_OK(tree.remove(k));
    std::uint64_t n = 99;
    NVWAL_CHECK_OK(tree.count(&n));
    EXPECT_EQ(n, 0u);
    NVWAL_CHECK_OK(tree.validate());
    // Tree still usable afterwards.
    NVWAL_CHECK_OK(insertN(1, 100));
    NVWAL_CHECK_OK(tree.validate());
}

/** Random-workload oracle test, parameterized over seeds. */
class BTreeOracle : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BTreeOracle, MatchesStdMap)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    Env env(env_config);
    DbFile db_file(env.fs, "oracle.db", 4096);
    NVWAL_CHECK_OK(db_file.open());
    Pager pager(db_file, 4096, 24);
    NVWAL_CHECK_OK(pager.open());
    BTree tree(pager);

    Rng rng(GetParam());
    std::map<RowId, ByteBuffer> model;
    for (int step = 0; step < 4000; ++step) {
        const RowId key = static_cast<RowId>(rng.nextBelow(700));
        const int op = static_cast<int>(rng.nextBelow(4));
        const bool exists = model.count(key) > 0;
        switch (op) {
          case 0: {
            const ByteBuffer v =
                testutil::makeValue(1 + rng.nextBelow(200), rng.next());
            const Status s = tree.insert(key, testutil::spanOf(v));
            if (exists) {
                EXPECT_FALSE(s.isOk());
            } else {
                NVWAL_CHECK_OK(s);
                model[key] = v;
            }
            break;
          }
          case 1: {
            const ByteBuffer v =
                testutil::makeValue(1 + rng.nextBelow(200), rng.next());
            const Status s = tree.update(key, testutil::spanOf(v));
            if (exists) {
                NVWAL_CHECK_OK(s);
                model[key] = v;
            } else {
                EXPECT_TRUE(s.isNotFound());
            }
            break;
          }
          case 2: {
            const Status s = tree.remove(key);
            if (exists) {
                NVWAL_CHECK_OK(s);
                model.erase(key);
            } else {
                EXPECT_TRUE(s.isNotFound());
            }
            break;
          }
          case 3: {
            ByteBuffer out;
            const Status s = tree.get(key, &out);
            if (exists) {
                NVWAL_CHECK_OK(s);
                EXPECT_EQ(out, model[key]);
            } else {
                EXPECT_TRUE(s.isNotFound());
            }
            break;
          }
        }
        if (step % 500 == 0)
            NVWAL_CHECK_OK(tree.validate());
    }
    NVWAL_CHECK_OK(tree.validate());

    // Full-content comparison via scan.
    std::map<RowId, ByteBuffer> scanned;
    NVWAL_CHECK_OK(tree.scan(INT64_MIN, INT64_MAX,
                             [&](RowId k, ConstByteSpan v) {
                                 scanned[k] = ByteBuffer(v.begin(), v.end());
                                 return true;
                             }));
    EXPECT_EQ(scanned, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeOracle,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace nvwal
