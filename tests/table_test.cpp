/**
 * @file
 * Tests for the multi-table catalog and the page free list: table
 * lifecycle, data isolation, page reuse after drops, transactional
 * create/drop (rollback and crash atomicity), and persistence across
 * reopen and power failure.
 */

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class TableTest : public ::testing::Test
{
  protected:
    TableTest() : env(makeEnvConfig())
    {
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::nexus5();
        c.nvramBytes = 32 << 20;
        c.flashBlocks = 8192;
        return c;
    }

    void
    reopen()
    {
        DbConfig config = db->config();
        db.reset();
        NVWAL_CHECK_OK(Database::open(env, config, &db));
    }

    Status
    fillTable(Table *t, RowId first, RowId last, std::size_t size = 100)
    {
        for (RowId k = first; k <= last; ++k) {
            NVWAL_RETURN_IF_ERROR(t->insert(
                k, testutil::spanOf(testutil::makeValue(size,
                                                        static_cast<std::uint64_t>(k)))));
        }
        return Status::ok();
    }

    Env env;
    std::unique_ptr<Database> db;
};

TEST_F(TableTest, DefaultTableExistsOnOpen)
{
    std::vector<std::string> names;
    NVWAL_CHECK_OK(db->listTables(&names));
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], Database::kDefaultTable);
    Table *main_table;
    NVWAL_CHECK_OK(db->openTable("main", &main_table));
    EXPECT_EQ(main_table->name(), "main");
}

TEST_F(TableTest, CreateOpenListDrop)
{
    NVWAL_CHECK_OK(db->createTable("users"));
    NVWAL_CHECK_OK(db->createTable("posts"));
    std::vector<std::string> names;
    NVWAL_CHECK_OK(db->listTables(&names));
    EXPECT_EQ(names,
              (std::vector<std::string>{"main", "users", "posts"}));

    Table *users;
    NVWAL_CHECK_OK(db->openTable("users", &users));
    NVWAL_CHECK_OK(db->dropTable("posts"));
    NVWAL_CHECK_OK(db->listTables(&names));
    EXPECT_EQ(names, (std::vector<std::string>{"main", "users"}));
}

TEST_F(TableTest, DuplicateCreateRejected)
{
    NVWAL_CHECK_OK(db->createTable("t"));
    EXPECT_EQ(db->createTable("t").code(), StatusCode::InvalidArgument);
    EXPECT_EQ(db->createTable("main").code(),
              StatusCode::InvalidArgument);
}

TEST_F(TableTest, DropMissingOrDefaultRejected)
{
    EXPECT_TRUE(db->dropTable("ghost").isNotFound());
    EXPECT_EQ(db->dropTable("main").code(), StatusCode::InvalidArgument);
    EXPECT_FALSE(db->createTable("").isOk());
}

TEST_F(TableTest, OpenMissingTableFails)
{
    Table *t;
    EXPECT_TRUE(db->openTable("nope", &t).isNotFound());
}

TEST_F(TableTest, TablesIsolateData)
{
    NVWAL_CHECK_OK(db->createTable("a"));
    NVWAL_CHECK_OK(db->createTable("b"));
    Table *a;
    Table *b;
    NVWAL_CHECK_OK(db->openTable("a", &a));
    NVWAL_CHECK_OK(db->openTable("b", &b));

    // The same keys carry different values per table.
    NVWAL_CHECK_OK(a->insert(1, "from-a"));
    NVWAL_CHECK_OK(b->insert(1, "from-b"));
    NVWAL_CHECK_OK(db->insert(1, "from-main"));

    ByteBuffer out;
    NVWAL_CHECK_OK(a->get(1, &out));
    EXPECT_EQ(out, toBytes("from-a"));
    NVWAL_CHECK_OK(b->get(1, &out));
    EXPECT_EQ(out, toBytes("from-b"));
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, toBytes("from-main"));

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(a->count(&n));
    EXPECT_EQ(n, 1u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, TablesSurviveReopen)
{
    NVWAL_CHECK_OK(db->createTable("inventory"));
    Table *inv;
    NVWAL_CHECK_OK(db->openTable("inventory", &inv));
    NVWAL_CHECK_OK(fillTable(inv, 1, 200));
    reopen();

    NVWAL_CHECK_OK(db->openTable("inventory", &inv));
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(inv->count(&n));
    EXPECT_EQ(n, 200u);
    ByteBuffer out;
    NVWAL_CHECK_OK(inv->get(77, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 77));
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, TablesSurvivePowerFailure)
{
    NVWAL_CHECK_OK(db->createTable("audit"));
    Table *audit;
    NVWAL_CHECK_OK(db->openTable("audit", &audit));
    NVWAL_CHECK_OK(fillTable(audit, 1, 50));
    env.powerFail(FailurePolicy::Pessimistic);

    DbConfig config = db->config();
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->openTable("audit", &audit));
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(audit->count(&n));
    EXPECT_EQ(n, 50u);
}

TEST_F(TableTest, DropFreesPagesAndCreateReusesThem)
{
    NVWAL_CHECK_OK(db->createTable("big"));
    Table *big;
    NVWAL_CHECK_OK(db->openTable("big", &big));
    NVWAL_CHECK_OK(fillTable(big, 1, 2000));
    const std::uint32_t pages_with_big = db->pager().pageCount();
    EXPECT_EQ(db->pager().freePageCount(), 0u);

    NVWAL_CHECK_OK(db->dropTable("big"));
    const std::uint32_t freed = db->pager().freePageCount();
    EXPECT_GT(freed, 50u);  // ~57 leaf pages + interior
    EXPECT_EQ(db->pager().pageCount(), pages_with_big);  // no shrink

    // Rebuilding an equal table consumes the free list instead of
    // growing the file.
    NVWAL_CHECK_OK(db->createTable("big2"));
    Table *big2;
    NVWAL_CHECK_OK(db->openTable("big2", &big2));
    NVWAL_CHECK_OK(fillTable(big2, 1, 2000));
    EXPECT_EQ(db->pager().pageCount(), pages_with_big);
    EXPECT_LT(db->pager().freePageCount(), freed);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, CreateDropCyclesDoNotGrowTheDatabase)
{
    // Warm-up cycle establishes the footprint.
    for (int cycle = 0; cycle < 5; ++cycle) {
        NVWAL_CHECK_OK(db->createTable("tmp"));
        Table *tmp;
        NVWAL_CHECK_OK(db->openTable("tmp", &tmp));
        NVWAL_CHECK_OK(fillTable(tmp, 1, 500));
        NVWAL_CHECK_OK(db->dropTable("tmp"));
        if (cycle == 0)
            continue;
        static std::uint32_t footprint = 0;
        if (cycle == 1)
            footprint = db->pager().pageCount();
        else
            EXPECT_EQ(db->pager().pageCount(), footprint)
                << "cycle " << cycle;
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, ManyFreedPagesSpanMultipleTrunks)
{
    // Free more pages than one trunk can index ((usable-8)/4 ~ 1018
    // for 4 KB pages): drop a table with several thousand pages.
    NVWAL_CHECK_OK(db->createTable("huge"));
    Table *huge;
    NVWAL_CHECK_OK(db->openTable("huge", &huge));
    NVWAL_CHECK_OK(fillTable(huge, 1, 40000, 90));
    NVWAL_CHECK_OK(db->dropTable("huge"));
    EXPECT_GT(db->pager().freePageCount(), 1100u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
    // And all of it is reusable.
    NVWAL_CHECK_OK(db->createTable("huge2"));
    Table *huge2;
    NVWAL_CHECK_OK(db->openTable("huge2", &huge2));
    NVWAL_CHECK_OK(fillTable(huge2, 1, 40000, 90));
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, RollbackUndoesCreateTable)
{
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->createTable("phantom"));
    Table *phantom;
    NVWAL_CHECK_OK(db->openTable("phantom", &phantom));
    NVWAL_CHECK_OK(phantom->insert(1, "gone"));
    NVWAL_CHECK_OK(db->rollback());

    Table *t;
    EXPECT_TRUE(db->openTable("phantom", &t).isNotFound());
    std::vector<std::string> names;
    NVWAL_CHECK_OK(db->listTables(&names));
    EXPECT_EQ(names.size(), 1u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, RollbackUndoesDropTable)
{
    NVWAL_CHECK_OK(db->createTable("keep"));
    Table *keep;
    NVWAL_CHECK_OK(db->openTable("keep", &keep));
    NVWAL_CHECK_OK(fillTable(keep, 1, 100));

    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->dropTable("keep"));
    Table *t;
    EXPECT_TRUE(db->openTable("keep", &t).isNotFound());
    NVWAL_CHECK_OK(db->rollback());

    NVWAL_CHECK_OK(db->openTable("keep", &keep));
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(keep->count(&n));
    EXPECT_EQ(n, 100u);
    ByteBuffer out;
    NVWAL_CHECK_OK(keep->get(50, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 50));
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_F(TableTest, MultiTableTransactionIsAtomic)
{
    NVWAL_CHECK_OK(db->createTable("ledger"));
    NVWAL_CHECK_OK(db->createTable("balances"));
    Table *ledger;
    Table *balances;
    NVWAL_CHECK_OK(db->openTable("ledger", &ledger));
    NVWAL_CHECK_OK(db->openTable("balances", &balances));

    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(ledger->insert(1, "debit alice 100"));
    NVWAL_CHECK_OK(balances->insert(1, "alice: 900"));
    NVWAL_CHECK_OK(db->commit());

    env.powerFail(FailurePolicy::Pessimistic);
    DbConfig config = db->config();
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->openTable("ledger", &ledger));
    NVWAL_CHECK_OK(db->openTable("balances", &balances));
    ByteBuffer out;
    NVWAL_CHECK_OK(ledger->get(1, &out));
    EXPECT_EQ(out, toBytes("debit alice 100"));
    NVWAL_CHECK_OK(balances->get(1, &out));
    EXPECT_EQ(out, toBytes("alice: 900"));
}

TEST_F(TableTest, CrashDuringDropTableIsAtomic)
{
    // Power failures injected across dropTable(): after recovery the
    // table is either fully present (with all rows) or fully gone.
    faultsim::SweepConfig config;
    config.env = makeEnvConfig();
    config.env.nvramBytes = 8 << 20;
    config.db.walMode = WalMode::Nvwal;
    config.warmup.createTable("victim");
    for (RowId key = 1; key <= 60; ++key) {
        config.warmup.insert(
            key,
            faultsim::Workload::valueFor(
                80, static_cast<std::uint64_t>(key)),
            "victim");
    }
    config.workload.phase("drop table").dropTable("victim");
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.maxPoints = 40;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.crashes, 0u);
}

} // namespace
} // namespace nvwal
