/**
 * @file
 * Tests for the observability subsystem (src/obs): histogram bucket
 * geometry and percentile accuracy against an exact sorted reference,
 * tracer ring-buffer wraparound and gating, Chrome trace_event
 * export parsed back by the repo's own strict JSON parser, the
 * counter-delta missing-key semantics, metrics JSON round-trips, and
 * the no-perturbation guarantee: a crash-point sweep with tracing
 * enabled recovers exactly what the untraced sweep recovers.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "faultsim/crash_sweep.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace nvwal
{
namespace
{

// ---- histogram -----------------------------------------------------

TEST(Histogram, BucketBoundariesRoundTrip)
{
    // Exact representation below 2 * kSubBuckets.
    for (std::uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
        const std::size_t idx = Histogram::bucketIndexOf(v);
        EXPECT_EQ(idx, v);
        EXPECT_EQ(Histogram::bucketLowerBound(idx), v);
        EXPECT_EQ(Histogram::bucketUpperBound(idx), v);
    }
    // Every value lands inside its bucket's [lo, hi] and the bucket
    // width bounds the relative quantization error.
    for (std::uint64_t v : std::vector<std::uint64_t>{
             64, 65, 100, 127, 128, 1000, 4095, 4096, 123456789,
             (1ull << 40) + 12345, ~0ull}) {
        const std::size_t idx = Histogram::bucketIndexOf(v);
        const std::uint64_t lo = Histogram::bucketLowerBound(idx);
        const std::uint64_t hi = Histogram::bucketUpperBound(idx);
        EXPECT_LE(lo, v);
        EXPECT_GE(hi, v);
        EXPECT_EQ(Histogram::bucketIndexOf(lo), idx);
        EXPECT_EQ(Histogram::bucketIndexOf(hi), idx);
        EXPECT_LE(hi - lo, lo / Histogram::kSubBuckets);
    }
    // Bucket boundaries tile the value range with no gaps.
    for (std::size_t idx = 0; idx < 500; ++idx) {
        EXPECT_EQ(Histogram::bucketUpperBound(idx) + 1,
                  Histogram::bucketLowerBound(idx + 1));
    }
}

TEST(Histogram, PercentilesTrackSortedReference)
{
    Histogram hist;
    std::vector<std::uint64_t> exact;
    std::uint64_t x = 88172645463325252ull;  // xorshift64 state
    for (int i = 0; i < 10000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = x % 1000000;  // ns-scale latencies
        hist.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    ASSERT_EQ(hist.count(), exact.size());
    EXPECT_EQ(hist.min(), exact.front());
    EXPECT_EQ(hist.max(), exact.back());
    for (double q : {0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
        const std::uint64_t ref =
            exact[std::min(exact.size() - 1,
                           static_cast<std::size_t>(
                               q * static_cast<double>(exact.size())))];
        const std::uint64_t got = hist.percentile(q);
        // The histogram answers the bucket midpoint, so the error is
        // bounded by one bucket width: ~1/32 relative (kSubBucketBits).
        const std::uint64_t tol = ref / 16 + 1;
        EXPECT_NEAR(static_cast<double>(got), static_cast<double>(ref),
                    static_cast<double>(tol))
            << "q=" << q;
    }
}

TEST(Histogram, SingleValueQuantilesAreExact)
{
    Histogram hist;
    hist.record(777777, 100);
    EXPECT_EQ(hist.p50(), 777777u);
    EXPECT_EQ(hist.p99(), 777777u);
    EXPECT_EQ(hist.percentile(0.0), 777777u);
    EXPECT_EQ(hist.percentile(1.0), 777777u);
}

TEST(Histogram, MergeEqualsCombinedRecording)
{
    Histogram a, b, combined;
    for (std::uint64_t v = 1; v < 3000; v += 7) {
        a.record(v);
        combined.record(v);
    }
    for (std::uint64_t v = 500000; v < 900000; v += 1117) {
        b.record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_EQ(a.p50(), combined.p50());
    EXPECT_EQ(a.p99(), combined.p99());
    const auto ba = a.buckets();
    const auto bc = combined.buckets();
    ASSERT_EQ(ba.size(), bc.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        EXPECT_EQ(ba[i].lo, bc[i].lo);
        EXPECT_EQ(ba[i].count, bc[i].count);
    }
}

TEST(Histogram, EmptyAndCleared)
{
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.p50(), 0u);
    hist.record(42);
    hist.clear();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.p99(), 0u);
    hist.record(7);  // stays usable after clear
    EXPECT_EQ(hist.p50(), 7u);
}

// ---- registry ------------------------------------------------------

TEST(Metrics, DeltaHandlesKeysMissingFromEitherSide)
{
    // Key present only in `before` (registry cleared in between):
    // the delta is an explicit 0, never an underflowed wrap.
    StatsSnapshot before{{"gone", 10}, {"shrunk", 10}, {"grew", 3}};
    StatsSnapshot now{{"shrunk", 4}, {"grew", 8}, {"fresh", 5}};
    const StatsSnapshot d = MetricsRegistry::delta(before, now);
    ASSERT_EQ(d.size(), 4u);
    EXPECT_EQ(d.at("gone"), 0u);    // only in before
    EXPECT_EQ(d.at("shrunk"), 0u);  // went backwards: clamped
    EXPECT_EQ(d.at("grew"), 5u);
    EXPECT_EQ(d.at("fresh"), 5u);   // only in now: full value
}

TEST(Metrics, HistogramReferencesSurviveClear)
{
    MetricsRegistry metrics;
    Histogram &h = metrics.histogram("x");
    h.record(100);
    metrics.clear();
    EXPECT_EQ(h.count(), 0u);  // reset in place, reference intact
    h.record(5);
    EXPECT_EQ(metrics.findHistogram("x")->count(), 1u);
}

TEST(Metrics, JsonDumpParsesBack)
{
    MetricsRegistry metrics;
    metrics.add("txns", 12);
    metrics.setGauge("pages", 34);
    metrics.recordNs("lat", 1000);
    metrics.recordNs("lat", 3000);

    JsonValue doc;
    NVWAL_CHECK_OK(parseJson(metricsJson(metrics), &doc));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("counters")->find("txns")->number, 12.0);
    EXPECT_EQ(doc.find("gauges")->find("pages")->number, 34.0);
    const JsonValue *lat = doc.find("histograms")->find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->number, 2.0);
    EXPECT_EQ(lat->find("sum")->number, 4000.0);
    EXPECT_EQ(lat->find("min")->number, 1000.0);
    EXPECT_EQ(lat->find("max")->number, 3000.0);
    ASSERT_TRUE(lat->find("buckets")->isArray());
    EXPECT_EQ(lat->find("buckets")->array.size(), 2u);
}

// ---- tracer --------------------------------------------------------

TEST(Tracer, DisabledByDefaultAndRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.instant("a", "cat");
    TraceSpan span(tracer, "b", "cat");
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, RingWrapsKeepingNewestEvents)
{
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.setCapacity(8);
    for (std::uint64_t i = 0; i < 20; ++i)
        tracer.instant("e", "t", "i", i);
    EXPECT_EQ(tracer.size(), 8u);
    EXPECT_EQ(tracer.recorded(), 20u);
    EXPECT_EQ(tracer.dropped(), 12u);
    const std::vector<TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].arg, 12 + i);  // oldest first
}

TEST(Tracer, TimestampsComeFromTheBoundClock)
{
    SimClock clock;
    Tracer tracer;
    tracer.bindClock(&clock);
    tracer.setEnabled(true);
    clock.advance(500);
    const SimTime begin = tracer.now();
    clock.advance(1500);
    tracer.complete("span", "t", begin);
    tracer.setCurrentTxn(7);
    tracer.instant("mark", "t");
    const std::vector<TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_EQ(events[0].ts, 500u);
    EXPECT_EQ(events[0].dur, 1500u);
    EXPECT_EQ(events[0].txn, 0u);
    EXPECT_EQ(events[1].phase, 'i');
    EXPECT_EQ(events[1].ts, 2000u);
    EXPECT_EQ(events[1].txn, 7u);
}

TEST(Tracer, ChromeExportParsesBackWithPerTxnThreads)
{
    SimClock clock;
    Tracer tracer;
    tracer.bindClock(&clock);
    tracer.setEnabled(true);
    tracer.setCurrentTxn(1);
    clock.advance(1000);
    tracer.complete("wal.log_write", "wal", 0, "frames", 2);
    tracer.setCurrentTxn(2);
    tracer.instant("txn.begin", "db");

    JsonValue doc;
    NVWAL_CHECK_OK(parseJson(chromeTraceJson(tracer), &doc));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("displayTimeUnit")->string, "ns");
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    int thread_names = 0;
    const JsonValue *span = nullptr;
    const JsonValue *mark = nullptr;
    for (const JsonValue &e : events->array) {
        const std::string name = e.find("name")->string;
        if (name == "thread_name")
            ++thread_names;
        else if (name == "wal.log_write")
            span = &e;
        else if (name == "txn.begin")
            mark = &e;
    }
    EXPECT_EQ(thread_names, 2);  // one per txn id seen
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->find("ph")->string, "X");
    EXPECT_EQ(span->find("pid")->number, 1.0);
    EXPECT_EQ(span->find("tid")->number, 1.0);
    EXPECT_EQ(span->find("dur")->number, 1.0);  // 1000 ns = 1 us
    EXPECT_EQ(span->find("args")->find("frames")->number, 2.0);
    ASSERT_NE(mark, nullptr);
    EXPECT_EQ(mark->find("ph")->string, "i");
    EXPECT_EQ(mark->find("tid")->number, 2.0);
    EXPECT_EQ(doc.find("otherData")->find("droppedEvents")->number, 0.0);
}

// ---- JSON writer/parser edge cases ---------------------------------

TEST(Json, WriterEscapesRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.member("s", "quote\" slash\\ tab\t newline\n ctrl\x01 end");
    w.member("neg", std::int64_t(-42));
    w.member("big", std::uint64_t(1) << 53);
    w.key("nan");
    w.value(0.0 / 0.0);  // non-finite emits null
    w.endObject();

    JsonValue doc;
    NVWAL_CHECK_OK(parseJson(w.str(), &doc));
    EXPECT_EQ(doc.find("s")->string,
              "quote\" slash\\ tab\t newline\n ctrl\x01 end");
    EXPECT_EQ(doc.find("neg")->number, -42.0);
    EXPECT_EQ(doc.find("big")->number, 9007199254740992.0);
    EXPECT_EQ(doc.find("nan")->type, JsonValue::Type::Null);
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    JsonValue v;
    EXPECT_FALSE(parseJson("", &v).isOk());
    EXPECT_FALSE(parseJson("{", &v).isOk());
    EXPECT_FALSE(parseJson("{\"a\":1,}", &v).isOk());  // trailing comma
    EXPECT_FALSE(parseJson("[1] x", &v).isOk());       // trailing garbage
    EXPECT_FALSE(parseJson("NaN", &v).isOk());
    EXPECT_FALSE(parseJson("'single'", &v).isOk());
    std::string deep(100, '[');
    EXPECT_FALSE(parseJson(deep, &v).isOk());  // depth cap
    NVWAL_CHECK_OK(parseJson("  {\"u\": \"\\u0041\\u00e9\"}  ", &v));
    EXPECT_EQ(v.find("u")->string, "A\xc3\xa9");
}

// ---- no-perturbation guarantee -------------------------------------

/**
 * Tentpole acceptance: tracing is pure observation. An exhaustive
 * crash-point sweep with the tracer enabled must sweep the same ops,
 * crash at the same points, and recover with zero violations, exactly
 * like the untraced sweep.
 */
TEST(Obs, CrashSweepIsUnperturbedByTracing)
{
    faultsim::SweepReport reports[2];
    for (int traced = 0; traced < 2; ++traced) {
        faultsim::SweepConfig config;
        config.env.cost = CostModel::tuna(500);
        config.env.nvramBytes = 8 << 20;
        config.env.flashBlocks = 2048;
        config.db.walMode = WalMode::Nvwal;
        config.db.nvwal.nvBlockSize = 4096;
        config.warmup = faultsim::Workload::standardTxns(0, 1);
        config.workload = faultsim::Workload::standardTxns(1, 2);
        config.policies.push_back(faultsim::PolicyRun{});
        config.trace = traced == 1;
        NVWAL_CHECK_OK(
            faultsim::CrashSweep(config).run(&reports[traced]));
    }
    EXPECT_TRUE(reports[0].ok()) << reports[0].summary();
    EXPECT_TRUE(reports[1].ok()) << reports[1].summary();
    EXPECT_EQ(reports[0].totalOps, reports[1].totalOps);
    EXPECT_EQ(reports[0].commitEvents, reports[1].commitEvents);
    EXPECT_EQ(reports[0].pointsSwept, reports[1].pointsSwept);
    EXPECT_EQ(reports[0].replays, reports[1].replays);
    EXPECT_EQ(reports[0].crashes, reports[1].crashes);
}

} // namespace
} // namespace nvwal
