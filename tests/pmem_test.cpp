/**
 * @file
 * Unit tests for the pmem persistence primitives: cost accounting
 * and the lazy-vs-eager flush-drain timing model (the mechanism
 * behind Figure 5).
 */

#include <gtest/gtest.h>

#include "pmem/pmem.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class PmemTest : public ::testing::Test
{
  protected:
    PmemTest()
        : cost(CostModel::tuna(500)),
          dev(1 << 20, cost.cacheLineSize, stats),
          pmem(dev, clock, cost, stats)
    {}

    SimClock clock;
    MetricsRegistry stats;
    CostModel cost;
    NvramDevice dev;
    Pmem pmem;
};

TEST_F(PmemTest, MemcpyChargesPerByte)
{
    const ByteBuffer data = testutil::makeValue(1000, 1);
    const SimTime before = clock.now();
    pmem.memcpyToNvram(4096, testutil::spanOf(data));
    const SimTime expected =
        static_cast<SimTime>(cost.memcpyNvramNsPerByte * 1000.0);
    EXPECT_EQ(clock.now() - before, expected);
    EXPECT_EQ(stats.get(stats::kTimeMemcpyNs), expected);
}

TEST_F(PmemTest, CacheLineFlushChargesSyscallOnce)
{
    const ByteBuffer data = testutil::makeValue(256, 2);
    pmem.memcpyToNvram(0, testutil::spanOf(data));
    pmem.cacheLineFlush(0, 256);
    EXPECT_EQ(stats.get(stats::kFlushSyscalls), 1u);
    EXPECT_EQ(stats.get(stats::kNvramLinesFlushed), 256u / 32u);
}

TEST_F(PmemTest, FlushRangeAlignsStartDown)
{
    // Algorithm 2: start is aligned to the line boundary, so a
    // flush of [40, 48) touches the line starting at 32.
    const ByteBuffer data = testutil::makeValue(8, 3);
    pmem.memcpyToNvram(40, testutil::spanOf(data));
    pmem.cacheLineFlush(40, 48);
    pmem.memoryBarrier();
    pmem.persistBarrier();
    ByteBuffer out(8);
    dev.readDurable(40, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST_F(PmemTest, MemoryBarrierWaitsForDrains)
{
    const ByteBuffer data = testutil::makeValue(32, 4);
    pmem.memcpyToNvram(0, testutil::spanOf(data));
    const SimTime t0 = clock.now();
    pmem.cacheLineFlush(0, 32);
    const SimTime after_issue = clock.now();
    // Issuing is cheap (syscall + one issue slot)...
    EXPECT_EQ(after_issue - t0, cost.syscallNs + cost.flushIssueNs);
    // ... the fence pays the media latency.
    pmem.memoryBarrier();
    EXPECT_GE(clock.now() - after_issue, cost.nvramWriteLatencyNs);
}

TEST_F(PmemTest, BatchedFlushesPipelineAcrossBanks)
{
    // Lazy synchronization: N flushes then one fence is faster than
    // N (flush + fence) pairs -- the Figure 5 effect.
    const std::size_t lines = 64;
    const std::size_t bytes = lines * cost.cacheLineSize;
    const ByteBuffer data = testutil::makeValue(bytes, 5);

    // Eager: fence after every line.
    SimClock eager_clock;
    MetricsRegistry s1;
    NvramDevice d1(1 << 20, cost.cacheLineSize, s1);
    Pmem eager(d1, eager_clock, cost, s1);
    eager.memcpyToNvram(0, testutil::spanOf(data));
    const SimTime eager_start = eager_clock.now();
    for (std::size_t i = 0; i < lines; ++i) {
        eager.cacheLineFlush(i * cost.cacheLineSize,
                             (i + 1) * cost.cacheLineSize);
        eager.memoryBarrier();
    }
    const SimTime eager_time = eager_clock.now() - eager_start;

    // Lazy: one batch, one fence.
    SimClock lazy_clock;
    MetricsRegistry s2;
    NvramDevice d2(1 << 20, cost.cacheLineSize, s2);
    Pmem lazy(d2, lazy_clock, cost, s2);
    lazy.memcpyToNvram(0, testutil::spanOf(data));
    const SimTime lazy_start = lazy_clock.now();
    lazy.cacheLineFlush(0, bytes);
    lazy.memoryBarrier();
    const SimTime lazy_time = lazy_clock.now() - lazy_start;

    EXPECT_LT(lazy_time, eager_time);
    // The drain pipeline gives roughly a nvramBanks-fold speedup on
    // the media-latency component.
    EXPECT_LT(lazy_time, eager_time / 2);
}

TEST_F(PmemTest, PersistBarrierDrainsQueue)
{
    const ByteBuffer data = testutil::makeValue(64, 6);
    pmem.memcpyToNvram(0, testutil::spanOf(data));
    pmem.cacheLineFlush(0, 64);
    pmem.memoryBarrier();
    EXPECT_GT(dev.queuedLineCount(), 0u);
    const SimTime before = clock.now();
    pmem.persistBarrier();
    EXPECT_EQ(dev.queuedLineCount(), 0u);
    EXPECT_GE(clock.now() - before, cost.persistBarrierNs);
    EXPECT_EQ(stats.get(stats::kPersistBarriers), 1u);
}

TEST_F(PmemTest, EagerHelperMakesRangeDurable)
{
    const ByteBuffer data = testutil::makeValue(300, 7);
    pmem.memcpyToNvram(1000, testutil::spanOf(data));
    pmem.persistRangeEager(1000, 1300);
    ByteBuffer out(300);
    dev.readDurable(1000, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST_F(PmemTest, StoreU64RequiresAlignment)
{
    pmem.storeU64(128, 42);
    EXPECT_EQ(dev.readU64(128), 42u);
    EXPECT_DEATH(pmem.storeU64(129, 42), "aligned");
}

TEST_F(PmemTest, TimeAccountingBucketsAreDisjointAndComplete)
{
    // All clock advancement from pmem primitives must land in the
    // accounting buckets (this is what the Figure 5 breakdown sums).
    const ByteBuffer data = testutil::makeValue(512, 8);
    const SimTime t0 = clock.now();
    pmem.memcpyToNvram(0, testutil::spanOf(data));
    pmem.memoryBarrier();
    pmem.cacheLineFlush(0, 512);
    pmem.memoryBarrier();
    pmem.persistBarrier();
    const SimTime elapsed = clock.now() - t0;
    const SimTime accounted = stats.get(stats::kTimeMemcpyNs) +
                              stats.get(stats::kTimeFlushNs) +
                              stats.get(stats::kTimeBarrierNs) +
                              stats.get(stats::kTimePersistNs) +
                              stats.get(stats::kTimeSyscallNs);
    EXPECT_EQ(elapsed, accounted);
}

} // namespace
} // namespace nvwal
