/**
 * @file
 * Unit tests for the slotted page codec, including the property the
 * whole differential-logging design rests on: every mutation's dirty
 * ranges are sufficient to reconstruct the new page byte-exactly
 * from the old page.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "btree/page_view.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;
constexpr std::uint32_t kUsable = 4096 - 24;

class PageViewTest : public ::testing::Test
{
  protected:
    PageViewTest() : buf(kPageSize, 0), view(span(), kUsable, &dirty) {}

    ByteSpan span() { return ByteSpan(buf.data(), buf.size()); }

    ByteBuffer buf;
    DirtyRanges dirty;
    PageView view;
};

TEST_F(PageViewTest, InitLeaf)
{
    view.initLeaf();
    EXPECT_TRUE(view.isLeaf());
    EXPECT_EQ(view.nCells(), 0);
    EXPECT_EQ(view.cellContentStart(), kUsable);
    EXPECT_EQ(view.freeBytes(), kUsable - PageView::kHeaderSize);
}

TEST_F(PageViewTest, LeafInsertAndLookup)
{
    view.initLeaf();
    const ByteBuffer v1 = testutil::makeValue(100, 1);
    const ByteBuffer v2 = testutil::makeValue(50, 2);
    view.leafInsert(0, 10, testutil::spanOf(v1));
    view.leafInsert(1, 20, testutil::spanOf(v2));

    EXPECT_EQ(view.nCells(), 2);
    EXPECT_EQ(view.keyAt(0), 10);
    EXPECT_EQ(view.keyAt(1), 20);
    const ConstByteSpan got = view.leafValueAt(0);
    EXPECT_EQ(ByteBuffer(got.begin(), got.end()), v1);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, LowerBound)
{
    view.initLeaf();
    ByteBuffer v(8, 0xAA);
    for (RowId k : {10, 20, 30, 40})
        view.leafInsert(view.lowerBound(k), k, testutil::spanOf(v));
    EXPECT_EQ(view.lowerBound(5), 0);
    EXPECT_EQ(view.lowerBound(10), 0);
    EXPECT_EQ(view.lowerBound(15), 1);
    EXPECT_EQ(view.lowerBound(40), 3);
    EXPECT_EQ(view.lowerBound(45), 4);
}

TEST_F(PageViewTest, InsertInMiddleKeepsOrder)
{
    view.initLeaf();
    ByteBuffer v(8, 0xBB);
    view.leafInsert(0, 10, testutil::spanOf(v));
    view.leafInsert(1, 30, testutil::spanOf(v));
    view.leafInsert(1, 20, testutil::spanOf(v));
    EXPECT_EQ(view.keyAt(0), 10);
    EXPECT_EQ(view.keyAt(1), 20);
    EXPECT_EQ(view.keyAt(2), 30);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, InsertDirtiesSmallRegion)
{
    view.initLeaf();
    ByteBuffer v(100, 0xCC);
    view.leafInsert(0, 1, testutil::spanOf(v));
    dirty.clear();

    view.leafInsert(1, 2, testutil::spanOf(v));
    // Insert dirties the header/pointer region and the new cell:
    // far less than the page (the paper's differential-logging
    // motivation, section 3.2).
    EXPECT_LT(dirty.totalBytes(), 250u);
    EXPECT_GE(dirty.ranges().size(), 2u);
}

TEST_F(PageViewTest, RemoveDirtiesOnlyPointerAndFreeblock)
{
    view.initLeaf();
    ByteBuffer v(100, 0xDD);
    for (RowId k = 1; k <= 10; ++k)
        view.leafInsert(static_cast<int>(k) - 1, k, testutil::spanOf(v));
    dirty.clear();

    view.leafRemove(4);
    NVWAL_CHECK_OK(view.validate());
    // SQLite-style delete: the pointer array, the header and a
    // 4-byte freeblock header -- not a compaction of the page.
    EXPECT_LT(dirty.totalBytes(), 64u);
    EXPECT_EQ(view.freeblockBytes(), 110u);
}

TEST_F(PageViewTest, SameSizeReinsertReusesFreeblock)
{
    view.initLeaf();
    ByteBuffer v(100, 0xEE);
    for (RowId k = 1; k <= 10; ++k)
        view.leafInsert(static_cast<int>(k) - 1, k, testutil::spanOf(v));
    const std::uint32_t ccs_before = view.cellContentStart();
    view.leafRemove(4);

    // The replacement cell of identical size lands in the freed
    // slot; the content frontier does not move (this is why update
    // transactions dirty roughly the record, Table 2).
    ByteBuffer v2(100, 0x77);
    view.leafInsert(4, 5, testutil::spanOf(v2));
    EXPECT_EQ(view.cellContentStart(), ccs_before);
    EXPECT_EQ(view.freeblockBytes(), 0u);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, AdjacentFreeblocksCoalesce)
{
    view.initLeaf();
    ByteBuffer v(100, 0x31);
    for (RowId k = 1; k <= 10; ++k)
        view.leafInsert(static_cast<int>(k) - 1, k, testutil::spanOf(v));
    // Free three physically adjacent cells (inserted consecutively,
    // so they are contiguous in the content area).
    view.leafRemove(3);
    view.leafRemove(3);
    view.leafRemove(3);
    EXPECT_EQ(view.freeblockBytes(), 330u);
    NVWAL_CHECK_OK(view.validate());  // checks the merge happened
}

TEST_F(PageViewTest, SmallerReinsertSplitsFreeblock)
{
    view.initLeaf();
    ByteBuffer v(100, 0x42);
    for (RowId k = 1; k <= 10; ++k)
        view.leafInsert(static_cast<int>(k) - 1, k, testutil::spanOf(v));
    view.leafRemove(4);

    ByteBuffer small(50, 0x43);
    view.leafInsert(4, 5, testutil::spanOf(small));
    EXPECT_EQ(view.freeblockBytes(), 110u - 60u);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, NearFitCreatesFragmentBytes)
{
    view.initLeaf();
    ByteBuffer v(100, 0x44);
    for (RowId k = 1; k <= 10; ++k)
        view.leafInsert(static_cast<int>(k) - 1, k, testutil::spanOf(v));
    view.leafRemove(4);  // 110-byte freeblock

    // 108-byte cell: the 2 leftover bytes are below the minimum
    // freeblock size and become fragmented bytes.
    ByteBuffer nearly(98, 0x45);
    view.leafInsert(4, 5, testutil::spanOf(nearly));
    EXPECT_EQ(view.fragmentedBytes(), 2u);
    EXPECT_EQ(view.freeblockBytes(), 0u);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, DefragmentConsolidatesFreeSpace)
{
    view.initLeaf();
    ByteBuffer v(100, 0x46);
    int count = 0;
    while (view.leafFits(v.size())) {
        view.leafInsert(count, count, testutil::spanOf(v));
        ++count;
    }
    // Punch holes, then require an allocation bigger than any hole:
    // the page must defragment and still fit it.
    view.leafRemove(2);
    view.leafRemove(6);
    view.leafRemove(10);
    const auto cells_before = view.leafCells();
    ByteBuffer big(220, 0x47);
    ASSERT_TRUE(view.leafFits(big.size()));
    view.leafInsert(view.lowerBound(1000), 1000, testutil::spanOf(big));
    NVWAL_CHECK_OK(view.validate());
    EXPECT_EQ(view.fragmentedBytes(), 0u);
    EXPECT_EQ(view.freeblockBytes(), 0u);
    // All surviving cells intact.
    const auto cells_after = view.leafCells();
    ASSERT_EQ(cells_after.size(), cells_before.size() + 1);
}

TEST_F(PageViewTest, LeafFitsAccounting)
{
    view.initLeaf();
    ByteBuffer v(100, 0xEE);
    int count = 0;
    while (view.leafFits(v.size())) {
        view.leafInsert(count, count, testutil::spanOf(v));
        ++count;
    }
    // 110-byte cells + 2-byte pointers in (4072 - 12) bytes.
    EXPECT_EQ(count, static_cast<int>((kUsable - 12) / 112));
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, InteriorInsertRemoveChildren)
{
    view.initInterior(99);
    EXPECT_EQ(view.rightChild(), 99u);
    view.interiorInsert(0, 100, 5);
    view.interiorInsert(1, 200, 6);
    EXPECT_EQ(view.childAt(0), 5u);
    EXPECT_EQ(view.childAt(1), 6u);
    EXPECT_EQ(view.childAt(2), 99u);  // right-most
    view.setChildAt(1, 7);
    EXPECT_EQ(view.childAt(1), 7u);
    view.setChildAt(2, 98);
    EXPECT_EQ(view.rightChild(), 98u);
    view.interiorRemove(0);
    EXPECT_EQ(view.nCells(), 1);
    EXPECT_EQ(view.keyAt(0), 200);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, RebuildLeafRoundTrip)
{
    view.initLeaf();
    std::vector<LeafCell> cells;
    for (RowId k = 1; k <= 20; ++k) {
        const ByteBuffer v = testutil::makeValue(40, static_cast<std::uint64_t>(k));
        cells.push_back(LeafCell::local(k, testutil::spanOf(v)));
    }
    view.rebuildLeaf(cells);
    EXPECT_EQ(view.nCells(), 20);
    const auto decoded = view.leafCells();
    ASSERT_EQ(decoded.size(), 20u);
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(decoded[i].key, cells[i].key);
        EXPECT_EQ(decoded[i].totalLen, cells[i].totalLen);
        EXPECT_EQ(decoded[i].payload, cells[i].payload);
    }
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, RebuildInteriorRoundTrip)
{
    std::vector<InteriorCell> cells;
    for (RowId k = 1; k <= 50; ++k)
        cells.push_back(InteriorCell{k * 10, static_cast<PageNo>(k)});
    view.rebuildInterior(cells, 1234);
    const auto decoded = view.interiorCells();
    ASSERT_EQ(decoded.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(decoded[i].key, cells[i].key);
        EXPECT_EQ(decoded[i].child, cells[i].child);
    }
    EXPECT_EQ(view.rightChild(), 1234u);
    NVWAL_CHECK_OK(view.validate());
}

TEST_F(PageViewTest, ValidateCatchesCorruption)
{
    view.initLeaf();
    ByteBuffer v(32, 0x12);
    view.leafInsert(0, 5, testutil::spanOf(v));
    view.leafInsert(1, 9, testutil::spanOf(v));
    // Corrupt key order.
    storeI64(buf.data() + view.cellContentStart(), 1);
    EXPECT_FALSE(view.validate().isOk());
}

TEST_F(PageViewTest, UninitializedPageValidatesOnlyWhenZero)
{
    EXPECT_TRUE(view.validate().isOk());
    buf[100] = 1;
    EXPECT_FALSE(view.validate().isOk());
}

/**
 * The key property: applying a mutation's dirty ranges (copied from
 * the new image onto the old image) reproduces the new image
 * byte-exactly. This is exactly what NVWAL recovery does with
 * differential log entries.
 */
class PageDiffProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PageDiffProperty, DirtyRangesReconstructMutations)
{
    Rng rng(GetParam());
    ByteBuffer page(kPageSize, 0);
    DirtyRanges dirty;
    PageView view(ByteSpan(page.data(), page.size()), kUsable, &dirty);
    view.initLeaf();
    dirty.clear();

    std::map<RowId, ByteBuffer> model;
    ByteBuffer shadow = page;  // reconstructed from diffs only

    for (int step = 0; step < 300; ++step) {
        dirty.clear();
        const int op = static_cast<int>(rng.nextBelow(3));
        const RowId key = static_cast<RowId>(rng.nextBelow(60));
        const bool exists = model.count(key) > 0;
        if (op == 0 && !exists) {
            const ByteBuffer value =
                testutil::makeValue(16 + rng.nextBelow(80), rng.next());
            if (!view.leafFits(value.size()))
                continue;
            view.leafInsert(view.lowerBound(key), key,
                            testutil::spanOf(value));
            model[key] = value;
        } else if (op == 1 && exists) {
            view.leafRemove(view.lowerBound(key));
            model.erase(key);
        } else {
            continue;
        }

        // Apply this step's dirty ranges onto the shadow.
        for (const ByteRange &r : dirty.ranges()) {
            std::memcpy(shadow.data() + r.lo, page.data() + r.lo,
                        r.size());
        }
        ASSERT_EQ(shadow, page) << "step " << step;
        NVWAL_CHECK_OK(view.validate());
    }

    // Model equivalence at the end.
    const auto cells = view.leafCells();
    ASSERT_EQ(cells.size(), model.size());
    for (const auto &cell : cells) {
        ASSERT_TRUE(model.count(cell.key));
        EXPECT_EQ(model[cell.key], cell.payload);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageDiffProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace nvwal
