/**
 * @file
 * Tests for the inspection module. Because the media walker is an
 * independent re-implementation of the NVWAL on-media format, these
 * tests double as format conformance checks: what NvwalLog writes,
 * the inspector must parse back with matching counts.
 */

#include <gtest/gtest.h>

#include "db/inspect.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class InspectTest : public ::testing::Test
{
  protected:
    InspectTest() : env(makeEnvConfig())
    {
        config.walMode = WalMode::Nvwal;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::tuna(500);
        c.nvramBytes = 16 << 20;
        c.flashBlocks = 2048;
        return c;
    }

    Env env;
    DbConfig config;
    std::unique_ptr<Database> db;
};

TEST_F(InspectTest, FreshMediaHasNoLogUntilFirstUse)
{
    // A fresh Env (no database) has no NVWAL root at all.
    EnvConfig env_config = makeEnvConfig();
    Env fresh(env_config);
    NvwalMediaReport report;
    NVWAL_CHECK_OK(collectNvwalMediaReport(fresh, 4096, &report));
    EXPECT_FALSE(report.logPresent);
    EXPECT_EQ(report.nodes.size(), 0u);
}

TEST_F(InspectTest, CommittedFrameCountMatchesTheLog)
{
    for (RowId k = 1; k <= 25; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    NvwalMediaReport report;
    NVWAL_CHECK_OK(
        collectNvwalMediaReport(env, config.pageSize, &report));
    EXPECT_TRUE(report.logPresent);
    EXPECT_EQ(report.committedFrames, db->wal().framesSinceCheckpoint());
    EXPECT_EQ(report.uncommittedFrames, 0u);
    EXPECT_EQ(report.tornFrames, 0u);
    EXPECT_GT(report.nodes.size(), 0u);
    // Every node the log considers linked is in-use on the heap.
    for (const NodeInfo &node : report.nodes)
        EXPECT_EQ(node.state, BlockState::InUse);
}

TEST_F(InspectTest, CheckpointEmptiesTheMedia)
{
    for (RowId k = 1; k <= 10; ++k)
        NVWAL_CHECK_OK(db->insert(k, "v"));
    NVWAL_CHECK_OK(db->checkpoint());
    NvwalMediaReport report;
    NVWAL_CHECK_OK(
        collectNvwalMediaReport(env, config.pageSize, &report));
    EXPECT_EQ(report.committedFrames, 0u);
    EXPECT_EQ(report.nodes.size(), 0u);
    EXPECT_GE(report.checkpointId, 1u);
}

TEST_F(InspectTest, TornTailIsVisibleBeforeRecoveryAndGoneAfter)
{
    for (RowId k = 1; k <= 10; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    const std::uint64_t committed = db->wal().framesSinceCheckpoint();

    env.nvramDevice.setScheduledCrashPolicy(FailurePolicy::Adversarial,
                                            0.6);
    env.nvramDevice.scheduleCrashAtOp(8);
    try {
        NVWAL_CHECK_OK(db->insert(
            99, testutil::spanOf(testutil::makeValue(100, 99))));
        FAIL() << "crash did not fire";
    } catch (const PowerFailure &) {
        env.fs.crash();
    }
    db.reset();

    NvwalMediaReport before;
    NVWAL_CHECK_OK(
        collectNvwalMediaReport(env, config.pageSize, &before));
    EXPECT_EQ(before.committedFrames, committed);

    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    NvwalMediaReport after;
    NVWAL_CHECK_OK(
        collectNvwalMediaReport(env, config.pageSize, &after));
    EXPECT_EQ(after.committedFrames, committed);
    EXPECT_EQ(after.tornFrames, 0u);      // recovery erased the tail
    EXPECT_EQ(after.uncommittedFrames, 0u);
    EXPECT_EQ(after.heapBlocksPending, 0u);
}

TEST_F(InspectTest, DatabaseReportCountsTablesAndPages)
{
    NVWAL_CHECK_OK(db->createTable("extra"));
    Table *extra;
    NVWAL_CHECK_OK(db->openTable("extra", &extra));
    for (RowId k = 1; k <= 100; ++k) {
        NVWAL_CHECK_OK(extra->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(50, k))));
    }
    DatabaseReport report;
    NVWAL_CHECK_OK(collectDatabaseReport(*db, &report));
    EXPECT_EQ(report.pageSize, 4096u);
    EXPECT_EQ(report.tables.size(), 2u);
    EXPECT_EQ(report.tables[0].name, "main");
    EXPECT_EQ(report.tables[0].rows, 100u);
    EXPECT_EQ(report.tables[1].name, "extra");
    EXPECT_EQ(report.tables[1].rows, 100u);
    EXPECT_GE(report.pageCount, 4u);

    // Render paths must not crash.
    printDatabaseReport(report, stderr);
    NvwalMediaReport media;
    NVWAL_CHECK_OK(collectNvwalMediaReport(env, config.pageSize, &media));
    printNvwalMediaReport(media, stderr);
}

TEST_F(InspectTest, PrintPageDecodesLeafAndInterior)
{
    for (RowId k = 1; k <= 200; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    // Force an overflow cell too.
    NVWAL_CHECK_OK(db->insert(
        999, testutil::spanOf(testutil::makeValue(9000, 999))));

    // The default table root is now interior; page 2 is the catalog
    // leaf. Both decode.
    NVWAL_CHECK_OK(printPage(db->pager(), db->pager().rootPage(),
                             stderr));
    Table *main_table = nullptr;
    NVWAL_CHECK_OK(db->openTable(Database::kDefaultTable, &main_table));
    NVWAL_CHECK_OK(printPage(db->pager(), main_table->btree().rootPage(),
                             stderr));
    EXPECT_FALSE(printPage(db->pager(), 0xFFFF, stderr).isOk());
}

} // namespace
} // namespace nvwal
