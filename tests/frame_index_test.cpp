/**
 * @file
 * Unit tests for the per-page radix frame index (DESIGN.md §14):
 * floor lookup at arbitrary horizons, the O(1) full-frame anchor,
 * height growth as sequences climb, pruning (leaves, interior
 * nodes, the tail shortcut and the lastFull reset), node accounting
 * through the bound gauge, and ascending range iteration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/frame_index.hpp"

namespace nvwal
{
namespace
{

FrameIndex::Slot
slot(NvOffset off)
{
    return FrameIndex::Slot{off, 0, 64};
}

/** Collect the sequences forRange visits. */
std::vector<CommitSeq>
seqsInRange(const FrameIndex &index, CommitSeq lo, CommitSeq hi)
{
    std::vector<CommitSeq> seqs;
    index.forRange(lo, hi,
                   [&](const FrameIndex::Leaf &leaf) {
                       seqs.push_back(leaf.seq);
                   });
    return seqs;
}

TEST(FrameIndex, EmptyIndexFindsNothing)
{
    FrameIndex index;
    EXPECT_TRUE(index.empty());
    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(1, &steps), nullptr);
    EXPECT_EQ(index.findVisible(kNoPin, &steps), nullptr);
    EXPECT_EQ(index.newestSeq(), 0u);
    EXPECT_EQ(index.frameCount(), 0u);
}

TEST(FrameIndex, FindVisibleIsFloorSearch)
{
    FrameIndex index;
    index.insert(2, slot(100), false);
    index.insert(5, slot(200), false);
    index.insert(9, slot(300), false);

    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(1, &steps), nullptr);
    ASSERT_NE(index.findVisible(2, &steps), nullptr);
    EXPECT_EQ(index.findVisible(2, &steps)->seq, 2u);
    EXPECT_EQ(index.findVisible(4, &steps)->seq, 2u);
    EXPECT_EQ(index.findVisible(5, &steps)->seq, 5u);
    EXPECT_EQ(index.findVisible(8, &steps)->seq, 5u);
    EXPECT_EQ(index.findVisible(9, &steps)->seq, 9u);
    // Horizons past the tail take the O(1) fast path.
    EXPECT_EQ(index.findVisible(1000, &steps)->seq, 9u);
    EXPECT_EQ(index.findVisible(kNoPin, &steps)->seq, 9u);
    EXPECT_GT(steps, 0u);
}

TEST(FrameIndex, MultipleSlotsShareOneLeafPerSeq)
{
    FrameIndex index;
    index.insert(3, slot(100), false);
    index.insert(3, slot(200), false);
    index.insert(3, slot(300), false);
    EXPECT_EQ(index.frameCount(), 3u);
    EXPECT_EQ(index.leafCount(), 1u);

    std::uint64_t steps = 0;
    const FrameIndex::Leaf *leaf = index.findVisible(3, &steps);
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->slots.size(), 3u);
    EXPECT_EQ(leaf->slots[1].off, 200u);
}

TEST(FrameIndex, AnchorTracksNewestFullFrame)
{
    FrameIndex index;
    index.insert(1, slot(10), true);    // full
    index.insert(2, slot(20), false);
    index.insert(3, slot(30), false);
    index.insert(4, slot(40), true);    // full again
    index.insert(5, slot(50), false);

    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(3, &steps)->anchorSeq, 1u);
    EXPECT_EQ(index.findVisible(5, &steps)->anchorSeq, 4u);
    const FrameIndex::Leaf *anchor = index.findVisible(4, &steps);
    EXPECT_EQ(anchor->anchorSeq, 4u);
    EXPECT_EQ(anchor->lastFull, 0);
}

TEST(FrameIndex, AnchorIndexPointsAtNewestFullSlotInLeaf)
{
    FrameIndex index;
    index.insert(7, slot(10), false);
    index.insert(7, slot(20), true);
    index.insert(7, slot(30), false);
    std::uint64_t steps = 0;
    const FrameIndex::Leaf *leaf = index.findVisible(7, &steps);
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->lastFull, 1);
    EXPECT_EQ(leaf->anchorSeq, 7u);
}

TEST(FrameIndex, HeightGrowsWithSequenceRange)
{
    FrameIndex index;
    index.insert(1, slot(10), false);
    const std::uint64_t nodes_small = index.nodeCount();
    // Sequence far outside the initial coverage forces root growth;
    // the old subtree stays reachable (coverage starts at 0).
    index.insert(100000, slot(20), false);
    EXPECT_GT(index.nodeCount(), nodes_small);

    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(1, &steps)->seq, 1u);
    EXPECT_EQ(index.findVisible(99999, &steps)->seq, 1u);
    EXPECT_EQ(index.findVisible(100000, &steps)->seq, 100000u);
    EXPECT_EQ(seqsInRange(index, 0, kNoPin),
              (std::vector<CommitSeq>{1, 100000}));
}

TEST(FrameIndex, ForRangeVisitsAscendingWithinBounds)
{
    FrameIndex index;
    for (CommitSeq s : {2u, 17u, 18u, 40u, 300u})
        index.insert(s, slot(s * 10), false);
    EXPECT_EQ(seqsInRange(index, 0, kNoPin),
              (std::vector<CommitSeq>{2, 17, 18, 40, 300}));
    EXPECT_EQ(seqsInRange(index, 17, 40),
              (std::vector<CommitSeq>{17, 18, 40}));
    EXPECT_EQ(seqsInRange(index, 18, 18),
              (std::vector<CommitSeq>{18}));
    EXPECT_TRUE(seqsInRange(index, 41, 299).empty());
}

TEST(FrameIndex, PruneThroughDropsLeavesAndResetsTail)
{
    FrameIndex index;
    for (CommitSeq s = 1; s <= 20; ++s)
        index.insert(s, slot(s * 10), false);
    EXPECT_EQ(index.frameCount(), 20u);

    EXPECT_EQ(index.pruneThrough(15), 15u);
    EXPECT_EQ(index.frameCount(), 5u);
    EXPECT_EQ(index.prunedThrough(), 15u);
    EXPECT_EQ(seqsInRange(index, 0, kNoPin),
              (std::vector<CommitSeq>{16, 17, 18, 19, 20}));
    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(15, &steps), nullptr);
    EXPECT_EQ(index.findVisible(16, &steps)->seq, 16u);
    EXPECT_EQ(index.newestSeq(), 20u);

    // Pruning everything must also drop the tail shortcut (it would
    // otherwise dangle into freed leaves) and then accept appends
    // above the pruned horizon again.
    EXPECT_EQ(index.pruneThrough(20), 5u);
    EXPECT_TRUE(index.empty());
    EXPECT_EQ(index.newestSeq(), 0u);
    EXPECT_EQ(index.findVisible(kNoPin, &steps), nullptr);
    index.insert(21, slot(210), false);
    EXPECT_EQ(index.findVisible(kNoPin, &steps)->seq, 21u);
}

TEST(FrameIndex, PruneResetsStaleFullFrameAnchor)
{
    FrameIndex index;
    index.insert(1, slot(10), true);
    index.insert(2, slot(20), false);
    index.pruneThrough(1);
    // The newest full frame is gone; later inserts must not anchor
    // at the pruned sequence 1.
    index.insert(3, slot(30), false);
    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(3, &steps)->anchorSeq, 0u);
    // Surviving leaf 2 still carries its frozen (now stale) anchor;
    // readers cross-check it against prunedThrough().
    EXPECT_EQ(index.findVisible(2, &steps)->anchorSeq, 1u);
    EXPECT_GE(index.prunedThrough(), 1u);
}

TEST(FrameIndex, NodeGaugeFollowsAllocationAndFree)
{
    std::uint64_t gauge = 0;
    FrameIndex index;
    index.bindNodeGauge(&gauge);
    for (CommitSeq s = 1; s <= 64; ++s)
        index.insert(s, slot(s), false);
    EXPECT_EQ(gauge, index.nodeCount());
    EXPECT_GT(gauge, 0u);

    index.pruneThrough(32);
    EXPECT_EQ(gauge, index.nodeCount());

    index.clear();
    EXPECT_EQ(gauge, 0u);
    EXPECT_EQ(index.nodeCount(), 0u);
}

TEST(FrameIndex, ClearResetsEverythingForReuse)
{
    FrameIndex index;
    index.insert(5, slot(50), true);
    index.pruneThrough(3);
    index.clear();
    EXPECT_TRUE(index.empty());
    EXPECT_EQ(index.prunedThrough(), 0u);
    // After clear the index accepts sequences below the old pruned
    // horizon (full-page supersede reuses the index this way).
    index.insert(1, slot(10), false);
    std::uint64_t steps = 0;
    EXPECT_EQ(index.findVisible(1, &steps)->seq, 1u);
    EXPECT_EQ(index.findVisible(1, &steps)->anchorSeq, 0u);
}

TEST(FrameIndex, DeepChainStaysLogarithmic)
{
    FrameIndex index;
    for (CommitSeq s = 1; s <= 10000; ++s)
        index.insert(s, slot(s), s == 1);

    // A floor search near the bottom of a 10k-deep chain touches at
    // most the tree height (+1 leaf), never O(chain).
    std::uint64_t steps = 0;
    const FrameIndex::Leaf *leaf = index.findVisible(1, &steps);
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->seq, 1u);
    EXPECT_LE(steps, FrameIndex::kMaxHeight + 1);
}

} // namespace
} // namespace nvwal
