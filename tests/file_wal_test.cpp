/**
 * @file
 * Unit tests for the file-based WAL (stock and optimized): frame
 * round-trips, commit semantics, checkpointing, torn-tail recovery
 * and the I/O-volume differences the paper measures in section 5.4.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "db/env.hpp"
#include "wal/file_wal.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;

class FileWalTest : public ::testing::TestWithParam<bool>
{
  protected:
    FileWalTest()
        : env(makeEnvConfig()),
          dbFile(env.fs, "t.db", kPageSize)
    {
        NVWAL_CHECK_OK(dbFile.open());
        config.optimized = GetParam();
        reserved = config.optimized ? 24 : 0;
        wal = std::make_unique<FileWal>(env.fs, "t.db-wal", dbFile,
                                        kPageSize, reserved, config,
                                        env.stats);
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::nexus5();
        return c;
    }

    /** Build a recognizable page image. */
    ByteBuffer
    makePage(std::uint64_t seed) const
    {
        ByteBuffer page = testutil::makeValue(kPageSize, seed);
        // Reserved tail bytes are never used by the B-tree.
        std::memset(page.data() + kPageSize - reserved, 0, reserved);
        return page;
    }

    Status
    commitPage(PageNo no, const ByteBuffer &page, std::uint32_t db_size)
    {
        DirtyRanges ranges;
        ranges.mark(0, kPageSize - reserved);
        std::vector<FrameWrite> frames{
            FrameWrite{no, testutil::spanOf(page), &ranges}};
        return wal->writeFrames(frames, true, db_size);
    }

    Env env;
    DbFile dbFile;
    FileWalConfig config;
    std::uint32_t reserved = 0;
    std::unique_ptr<FileWal> wal;
};

TEST_P(FileWalTest, EmptyLogReadsNothing)
{
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(wal->readPage(3, ByteSpan(out.data(), out.size())).isNotFound());
    EXPECT_EQ(wal->framesSinceCheckpoint(), 0u);
}

TEST_P(FileWalTest, WriteThenReadBack)
{
    const ByteBuffer page = makePage(1);
    NVWAL_CHECK_OK(commitPage(3, page, 3));
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(wal->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
    EXPECT_EQ(wal->framesSinceCheckpoint(), 1u);
}

TEST_P(FileWalTest, LatestCommittedVersionWins)
{
    const ByteBuffer v1 = makePage(1);
    const ByteBuffer v2 = makePage(2);
    NVWAL_CHECK_OK(commitPage(3, v1, 3));
    NVWAL_CHECK_OK(commitPage(3, v2, 3));
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(wal->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, v2);
}

TEST_P(FileWalTest, UncommittedFramesAreInvisible)
{
    const ByteBuffer page = makePage(5);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize - reserved);
    std::vector<FrameWrite> frames{
        FrameWrite{4, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(wal->writeFrames(frames, false, 0));
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(wal->readPage(4, ByteSpan(out.data(), out.size())).isNotFound());
}

TEST_P(FileWalTest, RecoverRebuildsIndex)
{
    const ByteBuffer p3 = makePage(3);
    const ByteBuffer p4 = makePage(4);
    NVWAL_CHECK_OK(commitPage(3, p3, 4));
    NVWAL_CHECK_OK(commitPage(4, p4, 4));

    FileWal fresh(env.fs, "t.db-wal", dbFile, kPageSize, reserved, config,
                  env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh.recover(&db_size));
    EXPECT_EQ(db_size, 4u);
    EXPECT_EQ(fresh.framesSinceCheckpoint(), 2u);
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(fresh.readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p3);
    ASSERT_TRUE(fresh.readPage(4, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p4);
}

TEST_P(FileWalTest, RecoverAfterCrashDropsUnsyncedTail)
{
    const ByteBuffer p3 = makePage(6);
    NVWAL_CHECK_OK(commitPage(3, p3, 3));  // fsynced

    // A second commit whose fsync never happened: simulate by
    // writing frames without commit (no fsync) and crashing.
    const ByteBuffer p4 = makePage(7);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize - reserved);
    std::vector<FrameWrite> frames{
        FrameWrite{4, testutil::spanOf(p4), &ranges}};
    NVWAL_CHECK_OK(wal->writeFrames(frames, false, 0));
    env.fs.crash();

    FileWal fresh(env.fs, "t.db-wal", dbFile, kPageSize, reserved, config,
                  env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh.recover(&db_size));
    EXPECT_EQ(db_size, 3u);
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(fresh.readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_TRUE(fresh.readPage(4, ByteSpan(out.data(), out.size())).isNotFound());
}

TEST_P(FileWalTest, RecoverRejectsCorruptedFrame)
{
    const ByteBuffer p3 = makePage(8);
    const ByteBuffer p4 = makePage(9);
    NVWAL_CHECK_OK(commitPage(3, p3, 3));
    NVWAL_CHECK_OK(commitPage(4, p4, 4));

    // Flip a byte inside the second frame's payload.
    const std::uint64_t header_region =
        config.optimized ? kPageSize : FileWal::kFileHeaderSize;
    const std::uint64_t frame_size =
        FileWal::kFrameHeaderSize + (kPageSize - reserved) +
        (config.optimized ? 0 : reserved);
    const std::uint64_t off = header_region + frame_size +
                              FileWal::kFrameHeaderSize + 100;
    ByteBuffer byte(1);
    NVWAL_CHECK_OK(env.fs.pread("t.db-wal", off, ByteSpan(byte.data(), 1)));
    byte[0] ^= 0xFF;
    NVWAL_CHECK_OK(
        env.fs.pwrite("t.db-wal", off, ConstByteSpan(byte.data(), 1)));
    NVWAL_CHECK_OK(env.fs.fsync("t.db-wal"));

    FileWal fresh(env.fs, "t.db-wal", dbFile, kPageSize, reserved, config,
                  env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh.recover(&db_size));
    // Only the first commit survives the checksum chain.
    EXPECT_EQ(db_size, 3u);
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(fresh.readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_TRUE(fresh.readPage(4, ByteSpan(out.data(), out.size())).isNotFound());
}

TEST_P(FileWalTest, CheckpointWritesBackAndTruncates)
{
    const ByteBuffer p3 = makePage(10);
    const ByteBuffer p4 = makePage(11);
    NVWAL_CHECK_OK(commitPage(3, p3, 4));
    NVWAL_CHECK_OK(commitPage(4, p4, 4));
    NVWAL_CHECK_OK(wal->checkpoint());

    EXPECT_EQ(wal->framesSinceCheckpoint(), 0u);
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(wal->readPage(3, ByteSpan(out.data(), out.size())).isNotFound());
    // The pages are now in the .db file.
    NVWAL_CHECK_OK(dbFile.readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p3);
    NVWAL_CHECK_OK(dbFile.readPage(4, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p4);
    // Log keeps working after the checkpoint.
    const ByteBuffer p5 = makePage(12);
    NVWAL_CHECK_OK(commitPage(5, p5, 5));
    ASSERT_TRUE(wal->readPage(5, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p5);
}

INSTANTIATE_TEST_SUITE_P(StockAndOptimized, FileWalTest,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "Optimized" : "Stock";
                         });

TEST(FileWalIoVolume, OptimizedModeWritesFewerJournalBlocks)
{
    // Regenerates the mechanism behind Figure 8: per-commit journal
    // traffic drops with aligned frames + pre-allocation.
    auto run = [](bool optimized) {
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5();
        Env env(env_config);
        DbFile db_file(env.fs, "t.db", kPageSize);
        NVWAL_CHECK_OK(db_file.open());
        FileWalConfig config;
        config.optimized = optimized;
        const std::uint32_t reserved = optimized ? 24 : 0;
        FileWal wal(env.fs, "t.db-wal", db_file, kPageSize, reserved,
                    config, env.stats);
        ByteBuffer page = testutil::makeValue(kPageSize, 1);
        std::memset(page.data() + kPageSize - reserved, 0, reserved);
        DirtyRanges ranges;
        ranges.mark(0, kPageSize - reserved);
        for (int i = 0; i < 10; ++i) {
            std::vector<FrameWrite> frames{FrameWrite{
                3, testutil::spanOf(page), &ranges}};
            NVWAL_CHECK_OK(wal.writeFrames(frames, true, 3));
        }
        return env.stats.get(stats::kJournalBlocksWritten);
    };
    const std::uint64_t stock = run(false);
    const std::uint64_t optimized = run(true);
    EXPECT_LT(optimized, stock);
    // The paper reports ~40% fewer journal accesses (172 vs 284 KB).
    EXPECT_LT(static_cast<double>(optimized),
              0.75 * static_cast<double>(stock));
}

TEST(FileWalIoVolume, StockFramesAreMisaligned)
{
    // A stock frame is pageSize + 24 bytes: ten commits write more
    // data blocks than ten optimized commits.
    auto dataBlocks = [](bool optimized) {
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5();
        Env env(env_config);
        DbFile db_file(env.fs, "t.db", kPageSize);
        NVWAL_CHECK_OK(db_file.open());
        FileWalConfig config;
        config.optimized = optimized;
        const std::uint32_t reserved = optimized ? 24 : 0;
        FileWal wal(env.fs, "t.db-wal", db_file, kPageSize, reserved,
                    config, env.stats);
        ByteBuffer page = testutil::makeValue(kPageSize, 2);
        std::memset(page.data() + kPageSize - reserved, 0, reserved);
        DirtyRanges ranges;
        ranges.mark(0, kPageSize - reserved);
        for (int i = 0; i < 10; ++i) {
            std::vector<FrameWrite> frames{FrameWrite{
                3, testutil::spanOf(page), &ranges}};
            NVWAL_CHECK_OK(wal.writeFrames(frames, true, 3));
        }
        return env.flash.bytesWritten(IoTag::WalFile);
    };
    EXPECT_GT(dataBlocks(false), dataBlocks(true));
}

} // namespace
} // namespace nvwal
