/**
 * @file
 * Unit tests for the NVRAM device model: cache/queue/durable state
 * separation, flush snapshot semantics, power-failure policies and
 * torn-write behaviour.
 */

#include <gtest/gtest.h>

#include "nvram/nvram_device.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class NvramDeviceTest : public ::testing::Test
{
  protected:
    MetricsRegistry stats;
    NvramDevice dev{1 << 16, 64, stats, 99};
};

TEST_F(NvramDeviceTest, WriteIsVisibleToReadsImmediately)
{
    const ByteBuffer data = testutil::makeValue(100, 1);
    dev.write(1000, testutil::spanOf(data));
    ByteBuffer out(100);
    dev.read(1000, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST_F(NvramDeviceTest, UnflushedWritesAreNotDurable)
{
    const ByteBuffer data = testutil::makeValue(64, 2);
    dev.write(0, testutil::spanOf(data));
    ByteBuffer out(64);
    dev.readDurable(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, ByteBuffer(64, 0));
    EXPECT_EQ(dev.dirtyLineCount(), 1u);
}

TEST_F(NvramDeviceTest, FlushAloneIsNotDurable)
{
    const ByteBuffer data = testutil::makeValue(64, 3);
    dev.write(128, testutil::spanOf(data));
    dev.flushLine(128);
    EXPECT_EQ(dev.queuedLineCount(), 1u);
    ByteBuffer out(64);
    dev.readDurable(128, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, ByteBuffer(64, 0));  // still queued, not on media
}

TEST_F(NvramDeviceTest, FlushPlusDrainIsDurable)
{
    const ByteBuffer data = testutil::makeValue(64, 4);
    dev.write(192, testutil::spanOf(data));
    dev.flushLine(192);
    dev.drainPersistQueue();
    ByteBuffer out(64);
    dev.readDurable(192, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
    EXPECT_EQ(dev.dirtyLineCount(), 0u);
    EXPECT_EQ(dev.queuedLineCount(), 0u);
}

TEST_F(NvramDeviceTest, FlushSnapshotsLineContent)
{
    // Stores after the flush must not ride along with it.
    ByteBuffer first(64, 0x11);
    dev.write(256, testutil::spanOf(first));
    dev.flushLine(256);
    ByteBuffer second(64, 0x22);
    dev.write(256, testutil::spanOf(second));
    dev.drainPersistQueue();
    ByteBuffer out(64);
    dev.readDurable(256, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, first);
    // The coherent view still sees the newest store.
    dev.read(256, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, second);
}

TEST_F(NvramDeviceTest, FlushOfCleanLineIsNoop)
{
    dev.flushLine(512);
    EXPECT_EQ(dev.queuedLineCount(), 0u);
    EXPECT_EQ(stats.get(stats::kNvramLinesFlushed), 0u);
}

TEST_F(NvramDeviceTest, ReadSeesQueueUnderCleanCache)
{
    // Flush moves the line out of the cache; reads must still see
    // the queued (newest) content, not stale durable bytes.
    ByteBuffer data(64, 0x33);
    dev.write(320, testutil::spanOf(data));
    dev.flushLine(320);
    ByteBuffer out(64);
    dev.read(320, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST_F(NvramDeviceTest, WriteSpanningLinesDirtiesEachLine)
{
    const ByteBuffer data = testutil::makeValue(200, 5);
    dev.write(60, testutil::spanOf(data));  // spans lines 0..4
    EXPECT_EQ(dev.dirtyLineCount(), 5u);
    ByteBuffer out(200);
    dev.read(60, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST_F(NvramDeviceTest, PessimisticPowerFailureDropsEverythingVolatile)
{
    const ByteBuffer data = testutil::makeValue(64, 6);
    dev.write(0, testutil::spanOf(data));
    dev.write(64, testutil::spanOf(data));
    dev.flushLine(64);  // queued, not drained
    dev.powerFail(FailurePolicy::Pessimistic);
    ByteBuffer out(64);
    dev.read(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, ByteBuffer(64, 0));
    dev.read(64, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, ByteBuffer(64, 0));
}

TEST_F(NvramDeviceTest, AllSurvivePolicyKeepsCacheAndQueue)
{
    const ByteBuffer a = testutil::makeValue(64, 7);
    const ByteBuffer b = testutil::makeValue(64, 8);
    dev.write(0, testutil::spanOf(a));
    dev.flushLine(0);
    dev.write(64, testutil::spanOf(b));
    dev.powerFail(FailurePolicy::AllSurvive);
    ByteBuffer out(64);
    dev.read(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, a);
    dev.read(64, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, b);
}

TEST_F(NvramDeviceTest, AdversarialTearsOnlyAtEightByteUnits)
{
    // A queued line survives per 8-byte unit: after the crash every
    // aligned 8-byte unit equals either the old or the new value.
    ByteBuffer old_data(64, 0x00);
    ByteBuffer new_data(64, 0xFF);
    dev.write(0, testutil::spanOf(old_data));
    dev.flushLine(0);
    dev.drainPersistQueue();  // old data durable

    dev.write(0, testutil::spanOf(new_data));
    dev.flushLine(0);  // new data queued
    dev.powerFail(FailurePolicy::Adversarial, 0.5);

    ByteBuffer out(64);
    dev.read(0, ByteSpan(out.data(), out.size()));
    for (std::size_t unit = 0; unit < 64; unit += 8) {
        bool all_old = true;
        bool all_new = true;
        for (std::size_t i = unit; i < unit + 8; ++i) {
            all_old = all_old && out[i] == 0x00;
            all_new = all_new && out[i] == 0xFF;
        }
        EXPECT_TRUE(all_old || all_new)
            << "unit " << unit << " tore within 8 bytes";
    }
}

TEST_F(NvramDeviceTest, AdversarialDirtyLinesSurviveProbabilistically)
{
    // With survive probability 1.0 every dirty line must land.
    MetricsRegistry s2;
    NvramDevice d2(1 << 16, 64, s2, 5);
    ByteBuffer data(64, 0x7A);
    d2.write(0, testutil::spanOf(data));
    d2.powerFail(FailurePolicy::Adversarial, 1.0);
    ByteBuffer out(64);
    d2.read(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);

    // With survive probability 0.0 no dirty line may land.
    NvramDevice d3(1 << 16, 64, s2, 6);
    d3.write(0, testutil::spanOf(data));
    d3.powerFail(FailurePolicy::Adversarial, 0.0);
    d3.read(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, ByteBuffer(64, 0));
}

TEST_F(NvramDeviceTest, ScheduledCrashFiresAtExactOp)
{
    ByteBuffer data(8, 0x01);
    dev.scheduleCrashAtOp(3);
    dev.write(0, testutil::spanOf(data));   // op 1
    dev.write(8, testutil::spanOf(data));   // op 2
    EXPECT_THROW(dev.write(16, testutil::spanOf(data)), PowerFailure);
    // After the crash the device keeps working (reboot semantics).
    dev.write(24, testutil::spanOf(data));
    EXPECT_EQ(dev.dirtyLineCount(), 1u);
}

TEST_F(NvramDeviceTest, ScheduleCancelledByZero)
{
    dev.scheduleCrashAtOp(1);
    dev.scheduleCrashAtOp(0);
    ByteBuffer data(8, 0x02);
    EXPECT_NO_THROW(dev.write(0, testutil::spanOf(data)));
}

TEST_F(NvramDeviceTest, U64Helpers)
{
    dev.writeU64(800, 0x1122334455667788ull);
    EXPECT_EQ(dev.readU64(800), 0x1122334455667788ull);
}

TEST_F(NvramDeviceTest, FlushCountsLines)
{
    ByteBuffer data(256, 0xCD);
    dev.write(0, testutil::spanOf(data));
    for (NvOffset a = 0; a < 256; a += 64)
        dev.flushLine(a);
    EXPECT_EQ(stats.get(stats::kNvramLinesFlushed), 4u);
}

TEST(NvramTailLine, PartialTailLineIsClampedNotOverrun)
{
    // Regression: a device whose size is not a multiple of the line
    // size has a partial tail line; applyLineToDurable() used to copy
    // the full line buffer, writing past the end of the durable
    // image. 100-byte device, 64-byte lines: the tail line holds
    // bytes 64..99 only.
    MetricsRegistry stats;
    NvramDevice d(100, 64, stats, 1);
    ByteBuffer data(36, 0x5C);
    d.write(64, testutil::spanOf(data));
    d.flushLine(64);
    d.drainPersistQueue();
    ByteBuffer out(36);
    d.readDurable(64, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(NvramTailLine, AdversarialCrashOverPartialTailLine)
{
    // The torn-write model must hold on the clamped tail too: every
    // (possibly clipped) 8-byte unit is all-old or all-new, and the
    // copy never overruns the media.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        MetricsRegistry stats;
        NvramDevice d(100, 64, stats, seed);
        ByteBuffer old_data(36, 0x11);
        d.write(64, testutil::spanOf(old_data));
        d.flushLine(64);
        d.drainPersistQueue();
        ByteBuffer new_data(36, 0xEE);
        d.write(64, testutil::spanOf(new_data));
        d.flushLine(64);
        d.powerFail(FailurePolicy::Adversarial, 0.5);

        ByteBuffer out(36);
        d.read(64, ByteSpan(out.data(), out.size()));
        for (std::size_t unit = 0; unit < 36; unit += 8) {
            const std::size_t end = std::min<std::size_t>(unit + 8, 36);
            bool all_old = true;
            bool all_new = true;
            for (std::size_t i = unit; i < end; ++i) {
                all_old = all_old && out[i] == 0x11;
                all_new = all_new && out[i] == 0xEE;
            }
            EXPECT_TRUE(all_old || all_new)
                << "seed " << seed << " unit " << unit;
        }
    }
}

TEST_F(NvramDeviceTest, SnapshotRestoreRoundTrip)
{
    // The crash-sweep harness restores one snapshot hundreds of
    // times; all three state layers must round-trip exactly and a
    // pending scheduled crash must not leak across the restore.
    ByteBuffer a(64, 0xA1);
    ByteBuffer b(64, 0xB2);
    ByteBuffer c(64, 0xC3);
    dev.write(0, testutil::spanOf(a));
    dev.flushLine(0);
    dev.drainPersistQueue();              // A durable
    dev.write(64, testutil::spanOf(b));
    dev.flushLine(64);                    // B queued
    dev.write(128, testutil::spanOf(c));  // C cached only

    const NvramDevice::Snapshot snap = dev.snapshot();

    ByteBuffer junk(64, 0x00);
    dev.write(0, testutil::spanOf(junk));
    dev.write(64, testutil::spanOf(junk));
    dev.write(128, testutil::spanOf(junk));
    dev.flushAllDirtyLines();
    dev.drainPersistQueue();
    dev.scheduleCrashAtOp(1000);

    dev.restore(snap);
    ByteBuffer out(64);
    dev.readDurable(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, a);
    dev.read(64, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, b);
    dev.read(128, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, c);
    EXPECT_EQ(dev.queuedLineCount(), 1u);  // B
    EXPECT_EQ(dev.dirtyLineCount(), 1u);   // C

    // restore() cancels the scheduled crash: far more than 1000 ops
    // must now pass without a PowerFailure.
    ByteBuffer probe(8, 0x01);
    for (int i = 0; i < 1200; ++i)
        dev.write(512, testutil::spanOf(probe));
}

} // namespace
} // namespace nvwal
