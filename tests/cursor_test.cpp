/**
 * @file
 * Tests for the bidirectional B-tree cursor: full forward/backward
 * traversal equivalence, seek semantics, empty-leaf skipping, deep
 * trees, overflow values, and write invalidation.
 */

#include <gtest/gtest.h>

#include <map>

#include "btree/cursor.hpp"
#include "db/database.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class CursorTest : public ::testing::Test
{
  protected:
    CursorTest() : env(makeEnvConfig())
    {
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
    }

    /** The default table's tree (replaces the removed Database::btree()). */
    BTree &
    tree()
    {
        Table *table = nullptr;
        NVWAL_CHECK_OK(db->openTable(Database::kDefaultTable, &table));
        return table->btree();
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::nexus5();
        c.nvramBytes = 32 << 20;
        c.flashBlocks = 8192;
        return c;
    }

    Status
    insertN(RowId first, RowId last, std::size_t size = 100)
    {
        for (RowId k = first; k <= last; ++k) {
            NVWAL_RETURN_IF_ERROR(db->insert(
                k, testutil::spanOf(testutil::makeValue(
                       size, static_cast<std::uint64_t>(k)))));
        }
        return Status::ok();
    }

    Env env;
    std::unique_ptr<Database> db;
};

TEST_F(CursorTest, EmptyTreeIsInvalidEverywhere)
{
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekFirst());
    EXPECT_FALSE(cursor.valid());
    NVWAL_CHECK_OK(cursor.seekLast());
    EXPECT_FALSE(cursor.valid());
    NVWAL_CHECK_OK(cursor.seek(0));
    EXPECT_FALSE(cursor.valid());
    EXPECT_TRUE(cursor.seekExact(1).isNotFound());
}

TEST_F(CursorTest, SingleRecord)
{
    NVWAL_CHECK_OK(db->insert(7, "seven"));
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekFirst());
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 7);
    ByteBuffer out;
    NVWAL_CHECK_OK(cursor.value(&out));
    EXPECT_EQ(out, toBytes("seven"));
    NVWAL_CHECK_OK(cursor.next());
    EXPECT_FALSE(cursor.valid());
    NVWAL_CHECK_OK(cursor.seekLast());
    ASSERT_TRUE(cursor.valid());
    NVWAL_CHECK_OK(cursor.prev());
    EXPECT_FALSE(cursor.valid());
}

TEST_F(CursorTest, ForwardTraversalMatchesScanOnDeepTree)
{
    NVWAL_CHECK_OK(insertN(1, 3000, 100));
    std::vector<RowId> scanned;
    NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                            [&](RowId k, ConstByteSpan) {
                                scanned.push_back(k);
                                return true;
                            }));

    std::vector<RowId> walked;
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekFirst());
    while (cursor.valid()) {
        walked.push_back(cursor.key());
        NVWAL_CHECK_OK(cursor.next());
    }
    EXPECT_EQ(walked, scanned);
    EXPECT_EQ(walked.size(), 3000u);
}

TEST_F(CursorTest, BackwardTraversalIsExactReverse)
{
    NVWAL_CHECK_OK(insertN(1, 2000, 100));
    std::vector<RowId> walked;
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekLast());
    while (cursor.valid()) {
        walked.push_back(cursor.key());
        NVWAL_CHECK_OK(cursor.prev());
    }
    ASSERT_EQ(walked.size(), 2000u);
    for (std::size_t i = 0; i < walked.size(); ++i)
        EXPECT_EQ(walked[i], static_cast<RowId>(2000 - i));
}

TEST_F(CursorTest, SeekLandsOnLowerBound)
{
    for (RowId k = 0; k <= 600; k += 3)  // 0, 3, 6, ...
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(60, k))));

    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seek(100));  // not present: next is 102
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 102);
    NVWAL_CHECK_OK(cursor.seek(102));  // present
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 102);
    NVWAL_CHECK_OK(cursor.seek(601));  // past the end
    EXPECT_FALSE(cursor.valid());
    NVWAL_CHECK_OK(cursor.seek(INT64_MIN));
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 0);

    NVWAL_CHECK_OK(cursor.seekExact(300));
    EXPECT_EQ(cursor.key(), 300);
    EXPECT_TRUE(cursor.seekExact(301).isNotFound());
}

TEST_F(CursorTest, BidirectionalWobble)
{
    NVWAL_CHECK_OK(insertN(1, 500, 100));
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seek(250));
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 250);
    NVWAL_CHECK_OK(cursor.next());
    EXPECT_EQ(cursor.key(), 251);
    NVWAL_CHECK_OK(cursor.prev());
    EXPECT_EQ(cursor.key(), 250);
    NVWAL_CHECK_OK(cursor.prev());
    EXPECT_EQ(cursor.key(), 249);
    // Wobble across a leaf boundary many times.
    for (int i = 0; i < 100; ++i) {
        NVWAL_CHECK_OK(cursor.next());
        ASSERT_TRUE(cursor.valid());
    }
    EXPECT_EQ(cursor.key(), 349);
    for (int i = 0; i < 100; ++i) {
        NVWAL_CHECK_OK(cursor.prev());
        ASSERT_TRUE(cursor.valid());
    }
    EXPECT_EQ(cursor.key(), 249);
}

TEST_F(CursorTest, SkipsLeavesEmptiedByDeletes)
{
    NVWAL_CHECK_OK(insertN(1, 400, 100));
    // Empty out a band in the middle -- whole leaves become empty
    // but stay in the tree (no merge-on-delete).
    for (RowId k = 100; k <= 300; ++k)
        NVWAL_CHECK_OK(db->remove(k));

    std::vector<RowId> walked;
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekFirst());
    while (cursor.valid()) {
        walked.push_back(cursor.key());
        NVWAL_CHECK_OK(cursor.next());
    }
    ASSERT_EQ(walked.size(), 199u);
    EXPECT_EQ(walked[98], 99);
    EXPECT_EQ(walked[99], 301);

    // Backwards too.
    std::vector<RowId> back;
    NVWAL_CHECK_OK(cursor.seekLast());
    while (cursor.valid()) {
        back.push_back(cursor.key());
        NVWAL_CHECK_OK(cursor.prev());
    }
    EXPECT_EQ(back.size(), 199u);
    // seek into the emptied band lands on its right edge.
    NVWAL_CHECK_OK(cursor.seek(200));
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 301);
}

TEST_F(CursorTest, AssemblesOverflowValues)
{
    const ByteBuffer big = testutil::makeValue(20000, 1);
    NVWAL_CHECK_OK(db->insert(5, testutil::spanOf(big)));
    NVWAL_CHECK_OK(db->insert(6, "small"));
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekFirst());
    ByteBuffer out;
    NVWAL_CHECK_OK(cursor.value(&out));
    EXPECT_EQ(out, big);
    NVWAL_CHECK_OK(cursor.next());
    NVWAL_CHECK_OK(cursor.value(&out));
    EXPECT_EQ(out, toBytes("small"));
}

TEST_F(CursorTest, WritesInvalidateOpenCursors)
{
    NVWAL_CHECK_OK(insertN(1, 50, 100));
    Cursor cursor(tree());
    NVWAL_CHECK_OK(cursor.seekFirst());
    ASSERT_TRUE(cursor.valid());
    NVWAL_CHECK_OK(db->insert(1000, "new"));
    EXPECT_EQ(cursor.next().code(), StatusCode::Busy);
    ByteBuffer scratch;
    EXPECT_EQ(cursor.value(&scratch).code(), StatusCode::Busy);
    // Re-seeking revalidates against the new tree state.
    NVWAL_CHECK_OK(cursor.seekLast());
    ASSERT_TRUE(cursor.valid());
    EXPECT_EQ(cursor.key(), 1000);
}

TEST_F(CursorTest, RandomSeeksMatchOracle)
{
    std::map<RowId, ByteBuffer> model;
    Rng rng(55);
    for (int i = 0; i < 800; ++i) {
        const RowId key = static_cast<RowId>(rng.nextBelow(5000));
        if (model.count(key))
            continue;
        const ByteBuffer v = testutil::makeValue(40 + rng.nextBelow(200),
                                                 rng.next());
        NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
        model[key] = v;
    }
    Cursor cursor(tree());
    for (int i = 0; i < 500; ++i) {
        const RowId target = static_cast<RowId>(rng.nextBelow(5200));
        NVWAL_CHECK_OK(cursor.seek(target));
        auto it = model.lower_bound(target);
        if (it == model.end()) {
            EXPECT_FALSE(cursor.valid()) << target;
        } else {
            ASSERT_TRUE(cursor.valid()) << target;
            EXPECT_EQ(cursor.key(), it->first) << target;
            ByteBuffer out;
            NVWAL_CHECK_OK(cursor.value(&out));
            EXPECT_EQ(out, it->second);
        }
    }
}

} // namespace
} // namespace nvwal
