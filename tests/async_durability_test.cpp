/**
 * @file
 * Tests for the durability-epoch pipeline (DESIGN.md §11): the
 * Durability::Async commit level, epoch sequencing and acks, the
 * bounded-staleness window, prefix-consistent recovery with torn
 * frame classification, and the crash sweeps that audit the
 * probabilistic-consistency claim. The AsyncConcurrency suite runs
 * the background durability thread against concurrent committers and
 * is part of the TSan CI job.
 */

#include <gtest/gtest.h>

#include <thread>

#include "db/connection.hpp"
#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

EnvConfig
makeEnvConfig()
{
    EnvConfig c;
    c.cost = CostModel::tuna(500);
    return c;
}

DbConfig
asyncConfig()
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = SyncMode::Lazy;
    config.nvwal.diffLogging = true;
    config.nvwal.userHeap = true;
    return config;
}

// ---- the commit API ------------------------------------------------

TEST(AsyncDurability, UnsupportedOnFileWalKeepsTxnOpen)
{
    Env env(makeEnvConfig());
    DbConfig config;
    config.walMode = WalMode::FileOptimized;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(1, "v"));
    EXPECT_TRUE(db->commit(Durability::Async).isUnsupported());
    // The transaction is still open and retryable at a strict level.
    EXPECT_TRUE(db->inTransaction());
    NVWAL_CHECK_OK(db->commit());
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
}

TEST(AsyncDurability, AcksCompleteWhenTheEpochHardens)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.asyncMaxEpochs = 100;       // never force by count
    config.asyncMaxStalenessNs = 0;    // never force by age
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (RowId k = 1; k <= 5; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
        NVWAL_CHECK_OK(db->commit(Durability::Async));
        EXPECT_GT(db->lastCommitEpoch(), 0u);
    }
    // Acked, visible, but not yet guaranteed durable.
    EXPECT_EQ(db->asyncAcksPending(), 5u);
    EXPECT_EQ(db->hardenedEpoch(), 0u);
    EXPECT_EQ(db->statValue(stats::kDbAsyncCommits), 5u);
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(3, &out));

    NVWAL_CHECK_OK(db->flushAsyncCommits());
    EXPECT_EQ(db->asyncAcksPending(), 0u);
    EXPECT_EQ(db->hardenedEpoch(), db->lastCommitEpoch());
    EXPECT_EQ(db->statValue(stats::kWalEpochsHardened), 5u);
    EXPECT_GE(db->statValue(stats::kWalHardenBatches), 1u);
    EXPECT_EQ(db->statGauge(stats::kGaugeAsyncAcksPending), 0u);
}

TEST(AsyncDurability, EpochCountBoundForcesHarden)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.asyncMaxEpochs = 2;
    config.asyncMaxStalenessNs = 0;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (RowId k = 1; k <= 8; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
        NVWAL_CHECK_OK(db->commit(Durability::Async));
        // The staleness window is the contract: never more than
        // asyncMaxEpochs epochs (here, commits) at risk.
        EXPECT_LE(db->asyncAcksPending(), 2u);
    }
    // 8 commits with a window of 2 force a harden after the 3rd and
    // the 6th; the final two stay pending within the window.
    EXPECT_GE(db->statValue(stats::kWalHardenBatches), 2u);
    EXPECT_EQ(db->asyncAcksPending(), 2u);
}

TEST(AsyncDurability, StalenessAgeBoundForcesHarden)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.asyncMaxEpochs = 1000;
    config.asyncMaxStalenessNs = 1;   // any simulated time forces it
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (RowId k = 1; k <= 4; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
        NVWAL_CHECK_OK(db->commit(Durability::Async));
        // Each commit advances the simulated clock, so the epoch
        // pending when the next one lands is already over-age.
        EXPECT_LE(db->asyncAcksPending(), 2u);
    }
}

TEST(AsyncDurability, WaitForEpochHardensInline)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.asyncMaxEpochs = 100;
    config.asyncMaxStalenessNs = 0;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(1, "payload"));
    NVWAL_CHECK_OK(db->commit(Durability::Async));
    const std::uint64_t epoch = db->lastCommitEpoch();
    ASSERT_GT(epoch, 0u);
    NVWAL_CHECK_OK(db->waitForAsyncEpoch(epoch));
    EXPECT_GE(db->hardenedEpoch(), epoch);
    EXPECT_EQ(db->asyncAcksPending(), 0u);
}

TEST(AsyncDurability, FewerBarriersPerTxnThanLazyGroupCommit)
{
    // The pipeline's raison d'etre: N async commits cost ~1 barrier
    // pair at the forced harden, against one pair per (group of)
    // commit under Lazy. Single-threaded, so Lazy pays per commit.
    constexpr int kTxns = 16;
    std::uint64_t barriers_sync = 0;
    std::uint64_t barriers_async = 0;

    for (const bool async : {false, true}) {
        Env env(makeEnvConfig());
        DbConfig config = asyncConfig();
        config.asyncMaxEpochs = 100;
        config.asyncMaxStalenessNs = 0;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        const std::uint64_t before =
            db->statValue(stats::kPersistBarriers);
        for (RowId k = 1; k <= kTxns; ++k) {
            NVWAL_CHECK_OK(db->begin());
            NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
            NVWAL_CHECK_OK(db->commit(async ? Durability::Async
                                            : Durability::Sync));
        }
        if (async)
            NVWAL_CHECK_OK(db->flushAsyncCommits());
        const std::uint64_t delta =
            db->statValue(stats::kPersistBarriers) - before;
        (async ? barriers_async : barriers_sync) = delta;
    }
    // Both runs pay the same allocation/page barriers; async elides
    // the per-commit flush pair, so it lands well under 2/3 of Lazy.
    EXPECT_LT(barriers_async * 3, barriers_sync * 2)
        << "async=" << barriers_async << " sync=" << barriers_sync;
}

TEST(AsyncDurability, FlushedCommitsSurviveReopen)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 6; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(48, k)));
        NVWAL_CHECK_OK(db->commit(Durability::Async));
    }
    NVWAL_CHECK_OK(db->flushAsyncCommits());
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 6; ++k) {
        ByteBuffer out;
        NVWAL_CHECK_OK(db->get(k, &out));
        EXPECT_EQ(out, testutil::makeValue(48, k));
    }
}

TEST(AsyncDurability, PessimisticCrashRecoversHardenedPrefix)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.asyncMaxEpochs = 100;
    config.asyncMaxStalenessNs = 0;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    // Hardened prefix: keys 1..3 flushed explicitly.
    for (RowId k = 1; k <= 3; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(48, k)));
        NVWAL_CHECK_OK(db->commit(Durability::Async));
    }
    NVWAL_CHECK_OK(db->flushAsyncCommits());
    // At-risk suffix: keys 4..6 acked, never hardened.
    for (RowId k = 4; k <= 6; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(48, k)));
        NVWAL_CHECK_OK(db->commit(Durability::Async));
    }
    EXPECT_EQ(db->asyncAcksPending(), 3u);

    // Pessimistic power failure: every line still in the volatile
    // cache is lost, so the at-risk suffix must vanish cleanly.
    env.powerFail(FailurePolicy::Pessimistic);
    NVWAL_CHECK_OK(Database::recoverAfterCrash(env, config, &db));
    for (RowId k = 1; k <= 3; ++k) {
        ByteBuffer out;
        NVWAL_CHECK_OK(db->get(k, &out));
    }
    ByteBuffer out;
    for (RowId k = 4; k <= 6; ++k)
        EXPECT_TRUE(db->get(k, &out).isNotFound()) << "key " << k;
    // Recovery classified (and counted) what it discarded.
    EXPECT_GT(db->statValue(stats::kWalTornFramesDetected) +
                  db->statValue(stats::kWalRecoveryFramesDiscarded),
              0u);
    EXPECT_GE(db->statValue(stats::kWalRecoveryLostMarks), 1u);
    // The recovered database accepts new writes.
    NVWAL_CHECK_OK(db->insert(100, "post-crash"));
}

// ---- crash sweeps over async workloads ------------------------------

faultsim::SweepConfig
sweepBase()
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db = asyncConfig();
    config.db.nvwal.nvBlockSize = 4096;
    return config;
}

TEST(FaultSimAsync, PessimisticSweepBoundedLossWindow)
{
    faultsim::SweepConfig config = sweepBase();
    config.db.asyncMaxEpochs = 2;
    config.db.asyncMaxStalenessNs = 0;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::asyncTxns(1, 3, /*flush_every=*/2);
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_EQ(report.replays, report.crashes);
    // The sweep crossed states with acks at risk, and every recovered
    // prefix stayed within the configured window (a floor breach
    // would have been a violation).
    EXPECT_GT(report.asyncReplays, 0u);
    EXPECT_LE(report.maxLossEvents, config.db.asyncMaxEpochs);
}

TEST(FaultSimAsync, AdversarialSweepDetectsEveryTornFrame)
{
    faultsim::SweepConfig config = sweepBase();
    config.db.asyncMaxEpochs = 3;
    config.db.asyncMaxStalenessNs = 0;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::asyncTxns(1, 3);
    // Default matrix: pessimistic plus adversarial with four seeds.

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    // Prefix consistency + the durable floor held at every point
    // under every seed; any torn frame recovery failed to detect
    // would have surfaced as a state mismatch here.
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.asyncReplays, 0u);
    // Random line survival must actually have torn something across
    // the whole sweep, and recovery classified every instance.
    EXPECT_GT(report.tornFramesDetected, 0u);
    EXPECT_GE(report.framesDiscarded, report.tornFramesDetected);
}

TEST(FaultSimAsync, MixedSyncAndAsyncCommitsKeepTheFloor)
{
    faultsim::SweepConfig config = sweepBase();
    config.db.asyncMaxEpochs = 4;
    config.db.asyncMaxStalenessNs = 0;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    // Async commits bracketed by strict ones: the strict appends
    // merge pending epochs into their barrier, so the floor climbs
    // with them and the adversary can only lose the async tail.
    faultsim::Workload w;
    w.phase("async 1").begin();
    w.insert(100, faultsim::Workload::valueFor(64, 100));
    w.commitAsync();
    w.phase("sync").begin();
    w.insert(110, faultsim::Workload::valueFor(64, 110));
    w.commit();
    w.phase("async 2").begin();
    w.insert(120, faultsim::Workload::valueFor(64, 120));
    w.commitAsync();
    config.workload = w;
    config.policies.push_back(faultsim::PolicyRun{});
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2}, 0.5});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    // At most the final async commit is ever at risk.
    EXPECT_LE(report.maxLossEvents, 1u);
}

// ---- background durability thread (TSan-covered) --------------------

TEST(AsyncConcurrency, BackgroundThreadHardensConcurrentCommits)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.backgroundDurability = true;
    config.asyncMaxEpochs = 4;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    constexpr int kThreads = 4;
    constexpr int kTxnsPerThread = 12;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&db, t] {
            std::unique_ptr<Connection> conn;
            NVWAL_CHECK_OK(db->connect(&conn));
            for (int i = 0; i < kTxnsPerThread; ++i) {
                const RowId key = t * 1000 + i;
                NVWAL_CHECK_OK(conn->begin());
                NVWAL_CHECK_OK(
                    conn->insert(key, testutil::makeValue(48, key)));
                NVWAL_CHECK_OK(conn->commit(Durability::Async));
            }
            // Wait for this connection's newest epoch: the background
            // thread (or a neighbours' forced harden) completes it.
            NVWAL_CHECK_OK(
                db->waitForAsyncEpoch(conn->lastCommitEpoch()));
        });
    }
    for (std::thread &w : workers)
        w.join();

    NVWAL_CHECK_OK(db->flushAsyncCommits());
    EXPECT_EQ(db->asyncAcksPending(), 0u);
    std::uint64_t rows = 0;
    NVWAL_CHECK_OK(db->count(&rows));
    EXPECT_EQ(rows, static_cast<std::uint64_t>(kThreads) *
                        kTxnsPerThread);
    EXPECT_GE(db->statValue(stats::kWalEpochsHardened), 1u);
}

TEST(AsyncConcurrency, MixedDurabilityLevelsAcrossThreads)
{
    Env env(makeEnvConfig());
    DbConfig config = asyncConfig();
    config.backgroundDurability = true;
    config.backgroundCheckpointer = true;
    config.incrementalCheckpoint = true;
    config.checkpointStepPages = 8;
    config.checkpointThreshold = 64;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    constexpr int kThreads = 3;
    constexpr int kTxnsPerThread = 10;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&db, t] {
            std::unique_ptr<Connection> conn;
            NVWAL_CHECK_OK(db->connect(&conn));
            for (int i = 0; i < kTxnsPerThread; ++i) {
                const RowId key = t * 1000 + i;
                NVWAL_CHECK_OK(conn->begin());
                NVWAL_CHECK_OK(
                    conn->insert(key, testutil::makeValue(96, key)));
                // Thread 0 commits strictly, the rest async: sync
                // appends interleave with pending epochs.
                NVWAL_CHECK_OK(conn->commit(
                    t == 0 ? Durability::Group : Durability::Async));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    NVWAL_CHECK_OK(db->flushAsyncCommits());
    std::uint64_t rows = 0;
    NVWAL_CHECK_OK(db->count(&rows));
    EXPECT_EQ(rows, static_cast<std::uint64_t>(kThreads) *
                        kTxnsPerThread);
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->count(&rows));
    EXPECT_EQ(rows, static_cast<std::uint64_t>(kThreads) *
                        kTxnsPerThread);
}

} // namespace
} // namespace nvwal
