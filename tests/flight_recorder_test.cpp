/**
 * @file
 * Tests for the NVRAM flight recorder and the crash-forensics pass
 * (DESIGN.md §12): ring survival and torn-slot scrubbing across
 * power failures, the zero-cost contract (recorder on/off must issue
 * identical persist barriers and flush syscalls), the recovery
 * report's durable-claim cross-checks, the merged cross-shard 2PC
 * timeline, and the sweep-level forensics audit.
 */

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

EnvConfig
makeEnvConfig()
{
    EnvConfig c;
    c.cost = CostModel::tuna(500);
    return c;
}

DbConfig
nvwalConfig()
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    return config;
}

/** Count ring records of one type in a recording. */
std::uint64_t
countType(const FlightRecording &rec, FrRecordType type)
{
    std::uint64_t n = 0;
    for (const FrRecord &r : rec.records)
        if (r.type == static_cast<std::uint8_t>(type))
            ++n;
    return n;
}

// ---- ring survival across power failures ---------------------------

TEST(FlightRecorder, PublishedRecordsSurviveAPessimisticCrash)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 10; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
    // The engine never flushes the ring; a test-driven durable cut.
    NVWAL_CHECK_OK(db->publishFlightRecorder());
    db.reset();
    env.powerFail(FailurePolicy::Pessimistic);

    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const RecoveryReport &report = db->recoveryReport();
    ASSERT_TRUE(report.recorderEnabled);
    ASSERT_TRUE(report.parsed);
    EXPECT_TRUE(report.inconsistencies.empty())
        << report.inconsistencies.front();
    EXPECT_GT(report.recording.validRecords, 0u);
    EXPECT_GT(countType(report.recording, FrRecordType::CommitAck), 0u);
    EXPECT_GT(countType(report.recording, FrRecordType::TxnBegin), 0u);
    // The published incarnation's RecorderOpen record survived, so
    // the boundary-derived fields are meaningful. Txn #1 is open's
    // catalog-init commit; the 10 inserts are #2..#11.
    EXPECT_TRUE(report.incarnationKnown);
    EXPECT_EQ(report.lastAckedTxn, 11u);
    EXPECT_TRUE(report.possiblyInFlight.empty());
}

TEST(FlightRecorder, UnpublishedRingDiesWithThePowerButDataDoesNot)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 5; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
    db.reset();
    // Plain stores only: the pessimistic policy drops every cached
    // line, so the telemetry vanishes -- by design, it bought zero
    // barriers -- while the WAL's committed data survives.
    env.powerFail(FailurePolicy::Pessimistic);

    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const RecoveryReport &report = db->recoveryReport();
    ASSERT_TRUE(report.recorderEnabled);
    ASSERT_TRUE(report.parsed);
    EXPECT_EQ(report.recording.validRecords, 0u);
    EXPECT_FALSE(report.incarnationKnown);
    EXPECT_TRUE(report.inconsistencies.empty());
    ByteBuffer out;
    for (RowId k = 1; k <= 5; ++k)
        NVWAL_CHECK_OK(db->get(k, &out));
}

TEST(FlightRecorder, CleanReopenSeesTheWholeRing)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 8; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(32, k)));
    db.reset();

    // No crash: the simulated NVRAM keeps its cached lines, so the
    // un-flushed ring reads back complete.
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const RecoveryReport &report = db->recoveryReport();
    ASSERT_TRUE(report.parsed);
    // 8 inserts + the first open's catalog-init commit.
    EXPECT_EQ(countType(report.recording, FrRecordType::CommitAck), 9u);
    EXPECT_EQ(report.recording.tornSlots, 0u);
    EXPECT_TRUE(report.incarnationKnown);
    EXPECT_TRUE(report.inconsistencies.empty());
}

TEST(FlightRecorder, AdversarialCrashTearsSlotsButNeverTheReport)
{
    // Random line survival leaves half-written 40-byte records in
    // the ring; every one must be checksum-discarded, never parsed
    // into a bogus event, and never fail the open.
    std::uint64_t total_torn = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        EnvConfig env_config = makeEnvConfig();
        env_config.seed = seed;
        Env env(env_config);
        DbConfig config = nvwalConfig();
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        for (RowId k = 1; k <= 20; ++k)
            NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(48, k)));
        db.reset();
        env.powerFail(FailurePolicy::Adversarial, 0.5);

        NVWAL_CHECK_OK(Database::open(env, config, &db));
        const RecoveryReport &report = db->recoveryReport();
        ASSERT_TRUE(report.parsed);
        EXPECT_TRUE(report.inconsistencies.empty())
            << report.inconsistencies.front();
        total_torn += report.recording.tornSlots;
    }
    EXPECT_GT(total_torn, 0u);
}

TEST(FlightRecorder, RingWrapsWithoutLosingTheTail)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    config.frRingRecords = FlightRecorder::kMinCapacity;  // 16 slots
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 40; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(32, k)));
    db.reset();

    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const RecoveryReport &report = db->recoveryReport();
    ASSERT_TRUE(report.parsed);
    EXPECT_GT(report.recording.wraps, 0u);
    EXPECT_LE(report.recording.validRecords,
              static_cast<std::uint64_t>(FlightRecorder::kMinCapacity));
    // The newest ack is always among the survivors: the ring
    // overwrites oldest-first.
    std::uint64_t newest_ack = 0;
    for (const FrRecord &r : report.recording.records)
        if (r.type == static_cast<std::uint8_t>(FrRecordType::CommitAck))
            newest_ack = std::max(newest_ack, r.a64);
    EXPECT_EQ(newest_ack, 41u);  // catalog-init commit + 40 inserts
    EXPECT_GT(env.stats.get(stats::kFrRingWraps), 0u);
}

TEST(FlightRecorder, DisabledRecorderIsInertAndUnsupported)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    config.flightRecorder = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, "v"));
    EXPECT_FALSE(db->recoveryReport().recorderEnabled);
    EXPECT_TRUE(db->publishFlightRecorder().isUnsupported());
    EXPECT_EQ(env.stats.get(stats::kFrRecordsWritten), 0u);
}

TEST(FlightRecorder, OfflineCollectMatchesTheRecoveredRing)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 6; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(32, k)));
    NVWAL_CHECK_OK(db->publishFlightRecorder());
    db.reset();
    env.powerFail(FailurePolicy::Pessimistic);

    // The media walker decodes the same bytes the next open will.
    FlightRecording offline;
    NVWAL_CHECK_OK(FlightRecorder::collect(
        env.heap, env.pmem, FlightRecorder::namespaceFor("nvwal"),
        &offline));
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const FlightRecording &online = db->recoveryReport().recording;
    EXPECT_EQ(offline.validRecords, online.validRecords);
    EXPECT_EQ(offline.nextSeq, online.nextSeq);
    EXPECT_EQ(offline.capacity, online.capacity);

    EXPECT_TRUE(FlightRecorder::collect(env.heap, env.pmem, "no-such-ns",
                                        &offline)
                    .isNotFound());
}

// ---- record semantics ----------------------------------------------

TEST(FlightRecorder, CounterSnapshotsCarryResolvableNames)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    config.frSnapshotEveryBatches = 1;  // sample after every batch
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 4; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(32, k)));
    db.reset();

    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const FlightRecording &rec = db->recoveryReport().recording;
    const std::uint64_t snapshots =
        countType(rec, FrRecordType::CounterSnapshot);
    ASSERT_GT(snapshots, 0u);
    for (const FrRecord &r : rec.records) {
        if (r.type !=
            static_cast<std::uint8_t>(FrRecordType::CounterSnapshot))
            continue;
        EXPECT_NE(frCounterNameForHash(r.a32), nullptr)
            << "unresolvable counter hash in snapshot record";
    }
    EXPECT_EQ(frCounterNameForHash(frCounterNameHash(
                  stats::kPersistBarriers)),
              std::string(stats::kPersistBarriers));
}

TEST(FlightRecorder, CheckpointRecordsBracketTheRound)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 6; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(64, k)));
    NVWAL_CHECK_OK(db->checkpoint());
    db.reset();

    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const FlightRecording &rec = db->recoveryReport().recording;
    EXPECT_EQ(countType(rec, FrRecordType::CheckpointStart), 1u);
    EXPECT_EQ(countType(rec, FrRecordType::CheckpointEnd), 1u);
    EXPECT_EQ(countType(rec, FrRecordType::Truncation), 1u);
    // The truncation record is a durable claim stamped after the
    // round's barrier: new round in a32, marks truncated in a64.
    for (const FrRecord &r : rec.records) {
        if (r.type != static_cast<std::uint8_t>(FrRecordType::Truncation))
            continue;
        EXPECT_TRUE(r.durableClaim());
        EXPECT_EQ(r.a32, 1u);
        EXPECT_EQ(r.a64, 7u);  // catalog-init commit + 6 inserts
    }
}

TEST(FlightRecorder, JsonReportCarriesTheDocumentedKeys)
{
    Env env(makeEnvConfig());
    DbConfig config = nvwalConfig();
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, "v"));
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    const std::string doc = recoveryReportJson(db->recoveryReport());
    for (const char *key :
         {"\"forensics\"", "\"recorderEnabled\"", "\"ring\"",
          "\"recovered\"", "\"incarnationKnown\"", "\"possiblyInFlight\"",
          "\"stagedPrepares\"", "\"inconsistencies\"", "\"events\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
}

// ---- the zero-cost contract ----------------------------------------

/**
 * Persist barriers + flush syscalls one fixed workload issues,
 * measured from after open: the ring's one-time creation persist
 * (the only eager write the recorder ever does) stays out, every
 * commit / checkpoint / harden path is in.
 */
void
runWorkloadAndCount(DbConfig config, std::uint64_t *barriers,
                    std::uint64_t *flushes)
{
    Env env(makeEnvConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    const std::uint64_t barriers_base =
        env.stats.get(stats::kPersistBarriers);
    const std::uint64_t flushes_base =
        env.stats.get(stats::kFlushSyscalls);
    for (RowId k = 1; k <= 30; ++k) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(96, k)));
        NVWAL_CHECK_OK(db->insert(k + 1000, testutil::makeValue(96, k)));
        NVWAL_CHECK_OK(db->commit());
    }
    NVWAL_CHECK_OK(db->checkpoint());
    for (RowId k = 31; k <= 40; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(96, k)));
    db.reset();
    *barriers = env.stats.get(stats::kPersistBarriers) - barriers_base;
    *flushes = env.stats.get(stats::kFlushSyscalls) - flushes_base;
}

TEST(FlightRecorder, RecorderAddsZeroBarriersAndZeroFlushes)
{
    // The headline contract: telemetry rides existing ordering
    // points. Identical workload, recorder on vs off, under every
    // sync mode -- persist barriers and flush syscalls must match
    // exactly, not approximately.
    for (const SyncMode mode :
         {SyncMode::Eager, SyncMode::Lazy, SyncMode::ChecksumAsync}) {
        DbConfig on = nvwalConfig();
        on.nvwal.syncMode = mode;
        DbConfig off = on;
        off.flightRecorder = false;
        std::uint64_t barriers_on = 0, flushes_on = 0;
        std::uint64_t barriers_off = 0, flushes_off = 0;
        runWorkloadAndCount(on, &barriers_on, &flushes_on);
        runWorkloadAndCount(off, &barriers_off, &flushes_off);
        EXPECT_EQ(barriers_on, barriers_off)
            << "sync mode " << static_cast<int>(mode);
        EXPECT_EQ(flushes_on, flushes_off)
            << "sync mode " << static_cast<int>(mode);
    }
}

// ---- the cross-shard timeline --------------------------------------

FlightRecording
syntheticRing(std::uint32_t shard, std::vector<FrRecord> records)
{
    FlightRecording rec;
    rec.present = true;
    rec.shard = shard;
    rec.records = std::move(records);
    rec.validRecords = rec.records.size();
    return rec;
}

FrRecord
record2pc(FrRecordType type, std::uint64_t gtid, bool commit = false)
{
    FrRecord r;
    r.type = static_cast<std::uint8_t>(type);
    r.flags = kFrFlagDurableClaim;
    r.a16 = commit ? 1 : 0;
    r.a64 = gtid;
    return r;
}

TEST(FlightRecorder, CrossShardTimelineMergesByGtid)
{
    const FlightRecording s0 = syntheticRing(
        0, {record2pc(FrRecordType::Prepare, 7),
            record2pc(FrRecordType::Decision, 7, /*commit=*/true)});
    const FlightRecording s1 = syntheticRing(
        1, {record2pc(FrRecordType::Prepare, 7),
            record2pc(FrRecordType::Prepare, 9),
            record2pc(FrRecordType::Decision, 9, /*commit=*/false)});

    const std::vector<GtidTimeline> timeline =
        buildCrossShardTimeline({&s0, &s1});
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_EQ(timeline[0].gtid, 7u);
    EXPECT_EQ(timeline[0].preparedShards,
              (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(timeline[0].committedShards,
              (std::vector<std::uint32_t>{0}));
    EXPECT_TRUE(timeline[0].abortedShards.empty());
    EXPECT_EQ(timeline[1].gtid, 9u);
    EXPECT_EQ(timeline[1].preparedShards,
              (std::vector<std::uint32_t>{1}));
    EXPECT_EQ(timeline[1].abortedShards,
              (std::vector<std::uint32_t>{1}));
    EXPECT_TRUE(buildCrossShardTimeline({}).empty());
}

// ---- sweep-level forensics audit -----------------------------------

TEST(FlightRecorderSweep, EveryCrashPointYieldsAConsistentReport)
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db.walMode = WalMode::Nvwal;
    config.db.nvwal.nvBlockSize = 4096;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::standardTxns(1, 3);
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2}, 0.5});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    // The recorder is on by default: every replay's recovery built a
    // report and the harness audited it.
    EXPECT_EQ(report.forensicsChecked, report.replays);
    // Adversarial replays keep random cached lines, so across the
    // sweep some ring records survive and some slots tear.
    EXPECT_GT(report.frRecordsSurvived, 0u);
    EXPECT_GT(report.frTornSlotsDiscarded, 0u);
}

TEST(FlightRecorderSweep, RecorderOffSweepStillPasses)
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db.walMode = WalMode::Nvwal;
    config.db.nvwal.nvBlockSize = 4096;
    config.db.flightRecorder = false;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::standardTxns(1, 2);
    config.policies.push_back(faultsim::PolicyRun{});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.forensicsChecked, 0u);
    EXPECT_EQ(report.frRecordsSurvived, 0u);
}

} // namespace
} // namespace nvwal
