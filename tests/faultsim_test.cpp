/**
 * @file
 * Tests for the crash-point sweep harness itself: coverage accounting
 * (every device op swept when stride is 1, bounded sampling with
 * stride/maxPoints), and the adversarial multi-seed sweep over the
 * checksum-async configuration (section 4.2's weakest consistency
 * mode, where torn lines are most likely to slip through).
 */

#include <gtest/gtest.h>

#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

faultsim::SweepConfig
baseConfig()
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db.walMode = WalMode::Nvwal;
    config.db.nvwal.nvBlockSize = 4096;
    return config;
}

TEST(FaultSim, ExhaustiveSweepCoversEveryDeviceOp)
{
    faultsim::SweepConfig config = baseConfig();
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::standardTxns(1, 2);
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    // stride 1, no cap: every persistence-relevant device op of the
    // workload is a crash point, and every replay actually crashed.
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_GT(report.totalOps, 0u);
    EXPECT_EQ(report.replays, report.crashes);
    EXPECT_EQ(report.commitEvents, 2u);  // two committed transactions
    ASSERT_EQ(report.phases.size(), 2u);
    EXPECT_EQ(report.phases[0].first, "txn 1");
    EXPECT_EQ(report.phases[1].first, "txn 2");
    std::uint64_t phase_points = 0;
    for (const auto &[label, cov] : report.phases)
        phase_points += cov.points;
    EXPECT_EQ(phase_points, report.pointsSwept);
}

TEST(FaultSim, StrideAndMaxPointsBoundTheSweep)
{
    faultsim::SweepConfig config = baseConfig();
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::standardTxns(1, 2);
    config.policies.push_back(faultsim::PolicyRun{});
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2}, 0.5});
    config.stride = 7;
    config.maxPoints = 10;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GE(report.pointsSwept, 1u);
    EXPECT_LE(report.pointsSwept, 10u);
    // 1 pessimistic + 2 adversarial seeds per point.
    EXPECT_EQ(report.replays, report.pointsSwept * 3u);
    EXPECT_EQ(report.crashes, report.replays);
}

/**
 * Satellite: adversarial sweep with four RNG seeds over the
 * checksum-async configuration. Random line survival across the
 * in-flight log tail must never produce anything but a committed
 * prefix of the transaction sequence.
 */
TEST(FaultSim, ChecksumAsyncAdversarialSweepFourSeeds)
{
    faultsim::SweepConfig config = baseConfig();
    config.db.nvwal.syncMode = SyncMode::ChecksumAsync;
    config.db.nvwal.userHeap = true;
    config.db.nvwal.diffLogging = true;
    config.warmup = faultsim::Workload::standardTxns(0, 2);
    config.workload = faultsim::Workload::standardTxns(2, 4);
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2, 3, 4},
                            0.5});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_EQ(report.replays, report.pointsSwept * 4u);
    EXPECT_EQ(report.crashes, report.replays);
}

} // namespace
} // namespace nvwal
