/**
 * @file
 * Unit tests for src/sim: clock, stats registry, cost-model presets.
 */

#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/stats.hpp"

namespace nvwal
{
namespace
{

TEST(SimClock, AdvanceAndAdvanceTo)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(100);
    EXPECT_EQ(clock.now(), 100u);
    clock.advanceTo(50);  // never goes backwards
    EXPECT_EQ(clock.now(), 100u);
    clock.advanceTo(250);
    EXPECT_EQ(clock.now(), 250u);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

TEST(SimClock, ScopedTimerAccumulates)
{
    SimClock clock;
    SimTime bucket = 0;
    {
        ScopedSimTimer timer(clock, bucket);
        clock.advance(70);
    }
    {
        ScopedSimTimer timer(clock, bucket);
        clock.advance(30);
    }
    EXPECT_EQ(bucket, 100u);
}

TEST(Stats, AddGetSnapshotDelta)
{
    MetricsRegistry stats;
    EXPECT_EQ(stats.get("x"), 0u);
    stats.add("x");
    stats.add("x", 4);
    EXPECT_EQ(stats.get("x"), 5u);

    const StatsSnapshot before = stats.snapshot();
    stats.add("x", 10);
    stats.add("y", 3);
    const StatsSnapshot d =
        MetricsRegistry::delta(before, stats.snapshot());
    EXPECT_EQ(d.at("x"), 10u);
    EXPECT_EQ(d.at("y"), 3u);
}

TEST(CostModel, TunaPresetMatchesPaperAnchors)
{
    const CostModel m = CostModel::tuna(500);
    EXPECT_EQ(m.cacheLineSize, 32u);           // Tuna's line size
    EXPECT_EQ(m.nvramWriteLatencyNs, 500u);
    EXPECT_EQ(m.persistBarrierNs, 1000u);      // 1 us persist barrier
    // Single-insert transaction CPU time is ~424 us in the paper.
    const SimTime single = m.cpuTxnNs + m.cpuOpNs;
    EXPECT_NEAR(static_cast<double>(single), 424'000.0, 40'000.0);
    // 32-insert transaction is ~5828 us.
    const SimTime batch = m.cpuTxnNs + 32 * m.cpuOpNs;
    EXPECT_NEAR(static_cast<double>(batch), 5'828'000.0, 500'000.0);
}

TEST(CostModel, Nexus5PresetGeometry)
{
    const CostModel m = CostModel::nexus5(2000);
    EXPECT_EQ(m.cacheLineSize, 64u);           // Snapdragon 800
    EXPECT_EQ(m.nvramWriteLatencyNs, 2000u);
    EXPECT_GT(m.fsyncBaseNs, 100'000u);        // eMMC fsync is heavy
    // Nexus 5 is much faster than the Tuna board per statement.
    EXPECT_LT(m.cpuOpNs, CostModel::tuna().cpuOpNs);
}

TEST(CostModel, LatencyKnobIsIndependent)
{
    const CostModel a = CostModel::tuna(400);
    const CostModel b = CostModel::tuna(1900);
    EXPECT_EQ(a.cpuOpNs, b.cpuOpNs);
    EXPECT_EQ(a.nvramWriteLatencyNs, 400u);
    EXPECT_EQ(b.nvramWriteLatencyNs, 1900u);
}

} // namespace
} // namespace nvwal
