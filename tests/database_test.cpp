/**
 * @file
 * Integration tests for the Database facade: transactions,
 * autocommit, rollback, checkpointing, reopen, and cross-mode
 * equivalence (the same workload must produce the same logical
 * database under stock WAL, optimized WAL, and every NVWAL variant).
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

struct ModeParam
{
    WalMode mode;
    SyncMode sync;
    bool diff;
    bool userHeap;
    const char *label;
};

DbConfig
configFor(const ModeParam &p)
{
    DbConfig config;
    config.walMode = p.mode;
    config.nvwal.syncMode = p.sync;
    config.nvwal.diffLogging = p.diff;
    config.nvwal.userHeap = p.userHeap;
    return config;
}

class DatabaseTest : public ::testing::TestWithParam<ModeParam>
{
  protected:
    DatabaseTest() : env(makeEnvConfig())
    {
        NVWAL_CHECK_OK(Database::open(env, configFor(GetParam()), &db));
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::nexus5();
        return c;
    }

    void
    reopenDb()
    {
        db.reset();
        NVWAL_CHECK_OK(Database::open(env, configFor(GetParam()), &db));
    }

    Env env;
    std::unique_ptr<Database> db;
};

TEST_P(DatabaseTest, AutocommitInsertGet)
{
    NVWAL_CHECK_OK(db->insert(1, "hello"));
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, toBytes("hello"));
    EXPECT_FALSE(db->inTransaction());
}

TEST_P(DatabaseTest, ExplicitTransactionBatchesPages)
{
    NVWAL_CHECK_OK(db->begin());
    for (RowId k = 1; k <= 20; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    EXPECT_TRUE(db->inTransaction());
    const std::uint64_t txns_before =
        env.stats.get(stats::kTxnsCommitted);
    NVWAL_CHECK_OK(db->commit());
    EXPECT_EQ(env.stats.get(stats::kTxnsCommitted), txns_before + 1);
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 20u);
}

TEST_P(DatabaseTest, NestedBeginRejected)
{
    NVWAL_CHECK_OK(db->begin());
    EXPECT_EQ(db->begin().code(), StatusCode::Busy);
    NVWAL_CHECK_OK(db->rollback());
}

TEST_P(DatabaseTest, CommitWithoutBeginRejected)
{
    EXPECT_FALSE(db->commit().isOk());
    EXPECT_FALSE(db->rollback().isOk());
}

TEST_P(DatabaseTest, RollbackDiscardsChanges)
{
    NVWAL_CHECK_OK(db->insert(1, "keep"));
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(2, "drop"));
    NVWAL_CHECK_OK(db->update(1, testutil::bytesOf("changed")));
    NVWAL_CHECK_OK(db->rollback());

    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, toBytes("keep"));
    EXPECT_TRUE(db->get(2, &out).isNotFound());
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_P(DatabaseTest, RollbackAfterSplitRestoresPageCount)
{
    // Fill enough to force page allocations inside the rolled-back
    // transaction.
    const std::uint32_t pages_before = db->pager().pageCount();
    NVWAL_CHECK_OK(db->begin());
    for (RowId k = 1; k <= 200; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    EXPECT_GT(db->pager().pageCount(), pages_before);
    NVWAL_CHECK_OK(db->rollback());
    EXPECT_EQ(db->pager().pageCount(), pages_before);
    std::uint64_t n = 1;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 0u);
    // The tree still works after the rollback.
    NVWAL_CHECK_OK(db->insert(7, "after"));
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(7, &out));
    EXPECT_EQ(out, toBytes("after"));
}

TEST_P(DatabaseTest, FailedStatementInAutocommitRollsBack)
{
    NVWAL_CHECK_OK(db->insert(1, "v"));
    EXPECT_FALSE(db->insert(1, "dup").isOk());  // duplicate key
    EXPECT_FALSE(db->inTransaction());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 1u);
}

TEST_P(DatabaseTest, ReopenSeesCommittedData)
{
    for (RowId k = 1; k <= 50; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    reopenDb();
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 50u);
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(25, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 25));
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_P(DatabaseTest, CheckpointThenReopen)
{
    for (RowId k = 1; k <= 100; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    NVWAL_CHECK_OK(db->checkpoint());
    EXPECT_EQ(db->wal().framesSinceCheckpoint(), 0u);
    reopenDb();
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 100u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_P(DatabaseTest, AutoCheckpointTriggersAtThreshold)
{
    db.reset();
    DbConfig config = configFor(GetParam());
    config.name = "auto.db";
    config.checkpointThreshold = 50;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    const std::uint64_t ckpt_before = env.stats.get(stats::kCheckpoints);
    for (RowId k = 1; k <= 200; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    EXPECT_GT(env.stats.get(stats::kCheckpoints), ckpt_before);
    EXPECT_LT(db->wal().framesSinceCheckpoint(), 100u);
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 200u);
}

TEST_P(DatabaseTest, CheckpointInsideTransactionRejected)
{
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(1, "x"));
    EXPECT_EQ(db->checkpoint().code(), StatusCode::Busy);
    NVWAL_CHECK_OK(db->commit());
    NVWAL_CHECK_OK(db->checkpoint());
}

TEST_P(DatabaseTest, UpdateAndDeleteWorkloads)
{
    for (RowId k = 1; k <= 300; ++k) {
        NVWAL_CHECK_OK(
            db->insert(k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    for (RowId k = 1; k <= 300; k += 2) {
        NVWAL_CHECK_OK(db->update(
            k, testutil::spanOf(testutil::makeValue(100, 1000 + k))));
    }
    for (RowId k = 2; k <= 300; k += 2)
        NVWAL_CHECK_OK(db->remove(k));

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 150u);
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(151, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 1151));
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST_P(DatabaseTest, ScanAfterMixedWorkload)
{
    for (RowId k = 1; k <= 100; ++k)
        NVWAL_CHECK_OK(db->insert(k, "v"));
    for (RowId k = 1; k <= 100; k += 3)
        NVWAL_CHECK_OK(db->remove(k));
    std::vector<RowId> seen;
    NVWAL_CHECK_OK(db->scan(1, 100, [&](RowId k, ConstByteSpan) {
        seen.push_back(k);
        return true;
    }));
    for (RowId k : seen)
        EXPECT_NE((k - 1) % 3, 0) << k;
    EXPECT_EQ(seen.size(), 66u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, DatabaseTest,
    ::testing::Values(
        ModeParam{WalMode::FileStock, SyncMode::Lazy, true, true,
                  "StockWal"},
        ModeParam{WalMode::FileOptimized, SyncMode::Lazy, true, true,
                  "OptimizedWal"},
        ModeParam{WalMode::Nvwal, SyncMode::Lazy, false, false,
                  "NvwalLS"},
        ModeParam{WalMode::Nvwal, SyncMode::Lazy, true, false,
                  "NvwalLSDiff"},
        ModeParam{WalMode::Nvwal, SyncMode::ChecksumAsync, true, false,
                  "NvwalCSDiff"},
        ModeParam{WalMode::Nvwal, SyncMode::Lazy, false, true,
                  "NvwalUHLS"},
        ModeParam{WalMode::Nvwal, SyncMode::Lazy, true, true,
                  "NvwalUHLSDiff"},
        ModeParam{WalMode::Nvwal, SyncMode::ChecksumAsync, true, true,
                  "NvwalUHCSDiff"},
        ModeParam{WalMode::Nvwal, SyncMode::Eager, true, true,
                  "NvwalUHEagerDiff"}),
    [](const auto &info) { return std::string(info.param.label); });

TEST(DatabaseEquivalence, AllModesProduceTheSameLogicalDatabase)
{
    // Run one mixed workload under every mode and compare the full
    // logical content (WAL-replay equivalence).
    const ModeParam modes[] = {
        {WalMode::FileStock, SyncMode::Lazy, true, true, "stock"},
        {WalMode::FileOptimized, SyncMode::Lazy, true, true, "opt"},
        {WalMode::Nvwal, SyncMode::Lazy, false, false, "ls"},
        {WalMode::Nvwal, SyncMode::Lazy, true, true, "uhlsdiff"},
        {WalMode::Nvwal, SyncMode::ChecksumAsync, true, true, "uhcsdiff"},
        {WalMode::Nvwal, SyncMode::Eager, true, true, "uheagerdiff"},
    };

    std::map<RowId, ByteBuffer> reference;
    bool first = true;
    for (const ModeParam &mode : modes) {
        EnvConfig env_config;
        env_config.cost = CostModel::nexus5();
        Env env(env_config);
        std::unique_ptr<Database> db;
        DbConfig config = configFor(mode);
        config.checkpointThreshold = 40;  // force mid-run checkpoints
        NVWAL_CHECK_OK(Database::open(env, config, &db));

        Rng rng(777);  // same workload for every mode
        for (int txn = 0; txn < 60; ++txn) {
            NVWAL_CHECK_OK(db->begin());
            for (int op = 0; op < 5; ++op) {
                const RowId key = static_cast<RowId>(rng.nextBelow(200));
                const ByteBuffer value =
                    testutil::makeValue(1 + rng.nextBelow(150), rng.next());
                switch (rng.nextBelow(3)) {
                  case 0:
                    (void)db->insert(key, testutil::spanOf(value));
                    break;
                  case 1:
                    (void)db->update(key, testutil::spanOf(value));
                    break;
                  default:
                    (void)db->remove(key);
                    break;
                }
            }
            NVWAL_CHECK_OK(db->commit());
        }
        NVWAL_CHECK_OK(db->verifyIntegrity());

        std::map<RowId, ByteBuffer> content;
        NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                                [&](RowId k, ConstByteSpan v) {
                                    content[k] =
                                        ByteBuffer(v.begin(), v.end());
                                    return true;
                                }));
        if (first) {
            reference = content;
            first = false;
            EXPECT_FALSE(reference.empty());
        } else {
            EXPECT_EQ(content, reference) << "mode " << mode.label;
        }
    }
}

TEST(DatabaseGeometry, MismatchedPageSizeRejectedOnReopen)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, "x"));
    NVWAL_CHECK_OK(db->checkpoint());
    db.reset();

    DbConfig other = config;
    other.pageSize = 8192;
    std::unique_ptr<Database> bad;
    EXPECT_FALSE(Database::open(env, other, &bad).isOk());
}

} // namespace
} // namespace nvwal
