/**
 * @file
 * Thread-safety tests for the observability exporters: snapshot(),
 * histogramsSnapshot(), gaugesSnapshot() and metricsJson() are the
 * only way to read the registry, and they must be safe to call from
 * a monitoring thread while committers, the background checkpointer
 * and the background durability thread mutate counters, gauges and
 * histograms. The suite name is part of the TSan CI matrix
 * (ci.yml runs -R "Concurrency|...").
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/connection.hpp"
#include "db/database.hpp"
#include "db/inspect.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

TEST(MetricsExportConcurrency, SnapshotsRaceCleanlyWithBackgroundWork)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    env.stats.tracer().setEnabled(true);

    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = SyncMode::Lazy;
    config.nvwal.diffLogging = true;
    config.nvwal.userHeap = true;
    config.backgroundCheckpointer = true;
    config.backgroundDurability = true;
    config.checkpointThreshold = 16;  // keep the checkpointer busy
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> exports{0};

    // The monitoring thread: hammer every exporter while the engine
    // is at its busiest. TSan is the real assertion here.
    std::thread exporter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const StatsSnapshot counters = env.stats.snapshot();
            EXPECT_FALSE(counters.empty());
            const auto histograms = env.stats.histogramsSnapshot();
            const auto gauges = env.stats.gaugesSnapshot();
            (void)histograms;
            (void)gauges;
            const std::string doc = metricsJson(env.stats);
            EXPECT_NE(doc.find("\"counters\""), std::string::npos);
            exports.fetch_add(1, std::memory_order_relaxed);
        }
    });

    constexpr int kWriters = 3;
    constexpr RowId kTxnsPerWriter = 60;
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            std::unique_ptr<Connection> conn;
            NVWAL_CHECK_OK(db->connect(&conn));
            const RowId lo = 1 + w * 10000;
            for (RowId k = lo; k < lo + kTxnsPerWriter; ++k) {
                NVWAL_CHECK_OK(conn->begin());
                NVWAL_CHECK_OK(
                    conn->insert(k, testutil::makeValue(64, k)));
                NVWAL_CHECK_OK(conn->commit(
                    k % 3 == 0 ? Durability::Async : Durability::Sync));
            }
        });
    }
    for (std::thread &t : writers)
        t.join();
    NVWAL_CHECK_OK(db->flushAsyncCommits());
    stop.store(true, std::memory_order_relaxed);
    exporter.join();

    EXPECT_GT(exports.load(), 0u);
    // The workload really exercised the racy paths the exporters
    // snapshot against.
    const StatsSnapshot final_counters = env.stats.snapshot();
    EXPECT_GE(final_counters.at(stats::kTxnsCommitted),
              static_cast<std::uint64_t>(kWriters) * kTxnsPerWriter);
    EXPECT_GT(env.stats.get(stats::kFrRecordsWritten), 0u);
    db.reset();
}

TEST(MetricsExportConcurrency, DroppedTraceEventsSurfaceInSnapshots)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    env.stats.tracer().setCapacity(8);  // tiny ring: drops are certain
    env.stats.tracer().setEnabled(true);

    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 30; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::makeValue(32, k)));

    ASSERT_GT(env.stats.tracer().dropped(), 0u);
    const StatsSnapshot counters = env.stats.snapshot();
    ASSERT_TRUE(counters.count(stats::kTraceEventsDropped));
    EXPECT_EQ(counters.at(stats::kTraceEventsDropped),
              env.stats.tracer().dropped());
    const std::string doc = metricsJson(env.stats);
    EXPECT_NE(doc.find(stats::kTraceEventsDropped), std::string::npos);
}

} // namespace
} // namespace nvwal
