/**
 * @file
 * Unit tests for src/common: checksums, byte helpers, RNG, status.
 */

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/table_printer.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

TEST(Bytes, RoundTripFixedWidth)
{
    std::uint8_t buf[8];
    storeU16(buf, 0xBEEF);
    EXPECT_EQ(loadU16(buf), 0xBEEF);
    storeU32(buf, 0xDEADBEEF);
    EXPECT_EQ(loadU32(buf), 0xDEADBEEFu);
    storeU64(buf, 0x0123456789ABCDEFull);
    EXPECT_EQ(loadU64(buf), 0x0123456789ABCDEFull);
    storeI64(buf, -42);
    EXPECT_EQ(loadI64(buf), -42);
}

TEST(Bytes, LittleEndianLayout)
{
    std::uint8_t buf[4];
    storeU32(buf, 0x01020304);
    EXPECT_EQ(buf[0], 0x04);
    EXPECT_EQ(buf[1], 0x03);
    EXPECT_EQ(buf[2], 0x02);
    EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, AlignHelpers)
{
    EXPECT_EQ(alignUp(0, 8), 0u);
    EXPECT_EQ(alignUp(1, 8), 8u);
    EXPECT_EQ(alignUp(8, 8), 8u);
    EXPECT_EQ(alignUp(9, 64), 64u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(100, 32), 96u);
}

TEST(Bytes, ByteRangeExtend)
{
    ByteRange r;
    EXPECT_TRUE(r.empty());
    r.extend(10, 20);
    EXPECT_EQ(r.lo, 10u);
    EXPECT_EQ(r.hi, 20u);
    r.extend(5, 12);
    EXPECT_EQ(r.lo, 5u);
    EXPECT_EQ(r.hi, 20u);
    r.extend(30, 30);  // empty extend is a no-op
    EXPECT_EQ(r.hi, 20u);
    EXPECT_EQ(r.size(), 15u);
}

TEST(Bytes, HexDumpTruncates)
{
    ByteBuffer buf(100, 0xAB);
    const std::string dump = hexDump(ConstByteSpan(buf.data(), buf.size()),
                                     4);
    EXPECT_EQ(dump, "ab ab ab ab ...");
}

TEST(Checksum, Fnv1aIsStableAndSensitive)
{
    const ByteBuffer a = toBytes("hello world");
    const ByteBuffer b = toBytes("hello worle");
    EXPECT_EQ(fnv1a64(testutil::spanOf(a)), fnv1a64(testutil::spanOf(a)));
    EXPECT_NE(fnv1a64(testutil::spanOf(a)), fnv1a64(testutil::spanOf(b)));
}

TEST(Checksum, CumulativeDetectsReordering)
{
    const ByteBuffer a = testutil::makeValue(128, 1);
    const ByteBuffer b = testutil::makeValue(128, 2);

    CumulativeChecksum ab;
    ab.update(testutil::spanOf(a));
    ab.update(testutil::spanOf(b));
    CumulativeChecksum ba;
    ba.update(testutil::spanOf(b));
    ba.update(testutil::spanOf(a));
    EXPECT_NE(ab.value(), ba.value());
}

TEST(Checksum, CumulativeChunkingInvariant)
{
    // Updating with one big chunk equals updating with aligned
    // sub-chunks (4-byte word granularity).
    const ByteBuffer data = testutil::makeValue(256, 7);
    CumulativeChecksum whole;
    whole.update(testutil::spanOf(data));
    CumulativeChecksum parts;
    parts.update(ConstByteSpan(data.data(), 64));
    parts.update(ConstByteSpan(data.data() + 64, 192));
    EXPECT_EQ(whole.value(), parts.value());
}

TEST(Checksum, SerializedResume)
{
    const ByteBuffer a = testutil::makeValue(64, 3);
    const ByteBuffer b = testutil::makeValue(64, 4);
    CumulativeChecksum full;
    full.update(testutil::spanOf(a));
    full.update(testutil::spanOf(b));

    CumulativeChecksum first;
    first.update(testutil::spanOf(a));
    CumulativeChecksum resumed(first.value());
    resumed.update(testutil::spanOf(b));
    EXPECT_EQ(full.value(), resumed.value());
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(43);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.nextBelow(17), 17u);
        const auto v = c.nextInRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, BernoulliRoughlyFair)
{
    Rng rng(11);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.5) ? 1 : 0;
    EXPECT_GT(heads, 4700);
    EXPECT_LT(heads, 5300);
}

TEST(Status, CodesAndMessages)
{
    EXPECT_TRUE(Status::ok().isOk());
    const Status s = Status::corruption("bad checksum");
    EXPECT_FALSE(s.isOk());
    EXPECT_TRUE(s.isCorruption());
    EXPECT_EQ(s.code(), StatusCode::Corruption);
    EXPECT_EQ(s.toString(), "corruption: bad checksum");
    EXPECT_EQ(Status::ok().toString(), "ok");
    EXPECT_TRUE(Status::notFound().isNotFound());
}

TEST(Status, ReturnIfErrorPropagates)
{
    auto inner = []() { return Status::noSpace("disk full"); };
    auto outer = [&]() -> Status {
        NVWAL_RETURN_IF_ERROR(inner());
        return Status::ok();
    };
    EXPECT_EQ(outer().code(), StatusCode::NoSpace);
}

TEST(TablePrinter, RendersAlignedRows)
{
    TablePrinter t("demo");
    t.setHeader({"a", "bbbb"});
    t.addRow({"1", "2"});
    t.addRow({TablePrinter::num(3.14159, 2),
              TablePrinter::num(std::uint64_t(42))});
    // Smoke test: printing must not crash and numbers format sanely.
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(std::uint64_t(42)), "42");
    t.print(stderr);
}

} // namespace
} // namespace nvwal
