/**
 * @file
 * Sharded engine tests: config validation, routing determinism and
 * rebalance-free reopen, single- and cross-shard atomic transactions,
 * in-doubt recovery resolution, and the exhaustive cross-shard crash
 * sweep against the shadow-model oracle (DESIGN.md §10).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "faultsim/shard_sweep.hpp"
#include "shard/sharded_connection.hpp"
#include "shard/sharded_database.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

using Op = ShardedConnection::Op;

EnvConfig
testEnv()
{
    EnvConfig c;
    c.cost = CostModel::nexus5();
    c.nvramBytes = 32 << 20;
    c.flashBlocks = 16384;
    return c;
}

ShardConfig
testShards(std::uint32_t count)
{
    ShardConfig c;
    c.baseName = "sharded";
    c.shardCount = count;
    c.dbTemplate.checkpointThreshold = 64;
    return c;
}

/** Merged content of every shard's default table. */
std::map<RowId, ByteBuffer>
dumpAll(ShardedDatabase &db)
{
    std::map<RowId, ByteBuffer> content;
    for (std::uint32_t k = 0; k < db.shardCount(); ++k) {
        NVWAL_CHECK_OK(db.shard(k).scan(
            INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan v) {
                content[key] = ByteBuffer(v.begin(), v.end());
                return true;
            }));
    }
    return content;
}

// ---- configuration validation (DbConfig + ShardConfig) -------------

TEST(ShardConfigValidation, RejectsBadShardCounts)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    ShardConfig c = testShards(0);
    EXPECT_EQ(ShardedDatabase::open(env, c, &db).code(),
              StatusCode::InvalidArgument);
    c = testShards(ShardedDatabase::kMaxShards + 1);
    EXPECT_EQ(ShardedDatabase::open(env, c, &db).code(),
              StatusCode::InvalidArgument);
}

TEST(ShardConfigValidation, RejectsOverriddenDerivedFields)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    // A caller-set member name would collide across shards (all
    // members would share one .db path); it must be left derived.
    ShardConfig c = testShards(2);
    c.dbTemplate.name = "clash.db";
    EXPECT_EQ(ShardedDatabase::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    c = testShards(2);
    c.dbTemplate.nvwal.heapNamespace = "clash";
    EXPECT_EQ(ShardedDatabase::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    c = testShards(2);
    c.baseName = "";
    EXPECT_EQ(ShardedDatabase::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    // Non-NVWAL members cannot persist PREPARE/DECISION records.
    c = testShards(2);
    c.dbTemplate.walMode = WalMode::FileStock;
    EXPECT_EQ(ShardedDatabase::open(env, c, &db).code(),
              StatusCode::InvalidArgument);
}

TEST(ShardConfigValidation, DbConfigRejectedDescriptively)
{
    Env env(testEnv());
    std::unique_ptr<Database> db;

    DbConfig c;
    c.name = "";
    Status s = Database::open(env, c, &db);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_NE(s.toString().find("name"), std::string::npos);

    c = DbConfig();
    c.pageSize = 0;
    EXPECT_EQ(Database::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    c = DbConfig();
    c.reservedBytes = 4096;  // == pageSize
    EXPECT_EQ(Database::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    c = DbConfig();
    c.nvwal.heapNamespace = "";
    EXPECT_EQ(Database::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    c = DbConfig();
    c.nvwal.heapNamespace = std::string(NvHeap::kNamespaceNameLen + 1,
                                        'x');
    EXPECT_EQ(Database::open(env, c, &db).code(),
              StatusCode::InvalidArgument);

    c = DbConfig();
    c.incrementalCheckpoint = true;
    c.checkpointStepPages = 0;
    EXPECT_EQ(Database::open(env, c, &db).code(),
              StatusCode::InvalidArgument);
}

// ---- routing --------------------------------------------------------

TEST(ShardRouting, DeterministicAndCoversAllShards)
{
    for (const RoutingKind kind :
         {RoutingKind::Hash, RoutingKind::Range}) {
        std::set<std::uint32_t> hit;
        for (RowId key = -500; key <= 500; ++key) {
            const std::uint32_t a = routeKey(kind, key, 4);
            const std::uint32_t b = routeKey(kind, key, 4);
            EXPECT_EQ(a, b);
            EXPECT_LT(a, 4u);
            hit.insert(a);
        }
        // Both kinds must spread a mixed key population; Range needs
        // the domain extremes to reach the outer shards.
        EXPECT_EQ(routeKey(kind, INT64_MIN, 4),
                  routeKey(kind, INT64_MIN, 4));
        hit.insert(routeKey(kind, INT64_MIN, 4));
        hit.insert(routeKey(kind, INT64_MAX, 4));
        EXPECT_EQ(hit.size(), 4u);
    }
    // Single shard: everything routes to 0.
    EXPECT_EQ(routeKey(RoutingKind::Hash, 12345, 1), 0u);
    EXPECT_EQ(routeKey(RoutingKind::Range, -12345, 1), 0u);
}

TEST(ShardRouting, RangePreservesKeyOrder)
{
    std::uint32_t prev = 0;
    for (RowId key = INT64_MIN / 2; key < INT64_MAX / 2;
         key += INT64_MAX / 64) {
        const std::uint32_t shard = routeKey(RoutingKind::Range, key, 8);
        EXPECT_GE(shard, prev);
        prev = shard;
    }
}

TEST(ShardRouting, SameKeySameShardAcrossReopenAndCrash)
{
    Env env(testEnv());
    const ShardConfig config = testShards(4);
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, config, &db));

    std::map<RowId, std::uint32_t> placed;
    {
        std::unique_ptr<ShardedConnection> conn;
        NVWAL_CHECK_OK(db->connect(&conn));
        for (RowId key = 1; key <= 200; ++key) {
            NVWAL_CHECK_OK(
                conn->insert(key, testutil::makeValue(40, key)));
            placed[key] = db->shardOf(key);
        }
    }

    // Plain reopen: same routing, every key readable through the
    // router and physically on the shard it routes to.
    db.reset();
    NVWAL_CHECK_OK(ShardedDatabase::open(env, config, &db));
    for (const auto &[key, shard] : placed) {
        EXPECT_EQ(db->shardOf(key), shard);
        ByteBuffer direct;
        NVWAL_CHECK_OK(db->shard(shard).get(key, &direct));
        EXPECT_EQ(direct, testutil::makeValue(40, key));
    }

    // Crash recovery path: routing still unchanged.
    NVWAL_CHECK_OK(
        ShardedDatabase::recoverAfterCrash(env, config, &db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    for (const auto &[key, shard] : placed) {
        EXPECT_EQ(db->shardOf(key), shard);
        ByteBuffer value;
        NVWAL_CHECK_OK(conn->get(key, &value));
        EXPECT_EQ(value, testutil::makeValue(40, key));
    }
}

// ---- transactions ---------------------------------------------------

TEST(ShardTxn, SingleShardBatchCommitsLocally)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, testShards(4), &db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));

    // Build a batch whose keys all route to one shard.
    const std::uint32_t target = db->shardOf(1);
    std::vector<Op> ops;
    for (RowId key = 1; ops.size() < 5; ++key) {
        if (db->shardOf(key) == target)
            ops.push_back(Op::insert(key, std::string("one-shard")));
    }
    NVWAL_CHECK_OK(conn->runAtomic(ops));
    EXPECT_EQ(env.stats.get(stats::kShardTxnsSingle), 1u);
    EXPECT_EQ(env.stats.get(stats::kShardTxnsCross), 0u);
    EXPECT_EQ(env.stats.get(stats::kWalPrepareRecords), 0u);

    std::uint64_t rows = 0;
    NVWAL_CHECK_OK(conn->count(&rows));
    EXPECT_EQ(rows, ops.size());
}

TEST(ShardTxn, CrossShardBatchRunsTwoPhase)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, testShards(4), &db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));

    // 40 sequential keys hit all four hash shards with near
    // certainty; count the distinct participants for the record
    // assertions below.
    std::vector<Op> ops;
    std::set<std::uint32_t> participants;
    for (RowId key = 1; key <= 40; ++key) {
        ops.push_back(Op::insert(key, testutil::makeValue(24, key)));
        participants.insert(db->shardOf(key));
    }
    ASSERT_GT(participants.size(), 1u);
    NVWAL_CHECK_OK(conn->runAtomic(ops));

    EXPECT_EQ(env.stats.get(stats::kShardTxnsCross), 1u);
    EXPECT_EQ(env.stats.get(stats::kWalPrepareRecords),
              participants.size());
    EXPECT_EQ(env.stats.get(stats::kWalDecisionRecords),
              participants.size());

    // All-or-nothing content, readable through the router.
    for (RowId key = 1; key <= 40; ++key) {
        ByteBuffer value;
        NVWAL_CHECK_OK(conn->get(key, &value));
        EXPECT_EQ(value, testutil::makeValue(24, key));
    }

    // Mixed update+remove batch across shards.
    std::vector<Op> second;
    for (RowId key = 1; key <= 40; ++key) {
        if (key % 2 == 0)
            second.push_back(Op::remove(key));
        else
            second.push_back(Op::update(key, std::string("v2")));
    }
    NVWAL_CHECK_OK(conn->runAtomic(second));
    std::uint64_t rows = 0;
    NVWAL_CHECK_OK(conn->count(&rows));
    EXPECT_EQ(rows, 20u);
}

TEST(ShardTxn, MergedScanIsGloballyOrdered)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, testShards(4), &db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    for (RowId key = 100; key >= 1; --key)
        NVWAL_CHECK_OK(conn->insert(key, testutil::makeValue(16, key)));

    RowId prev = 0;
    std::uint64_t seen = 0;
    NVWAL_CHECK_OK(
        conn->scan(INT64_MIN, INT64_MAX, [&](RowId key, ConstByteSpan) {
            EXPECT_GT(key, prev);
            prev = key;
            ++seen;
            return true;
        }));
    EXPECT_EQ(seen, 100u);
}

TEST(ShardTxn, FailedBatchLeavesNoTrace)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, testShards(4), &db));
    std::unique_ptr<ShardedConnection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));

    std::vector<Op> seedRows;
    for (RowId key = 1; key <= 20; ++key)
        seedRows.push_back(Op::insert(key, std::string("seed")));
    NVWAL_CHECK_OK(conn->runAtomic(seedRows));
    const auto before = dumpAll(*db);

    // Key 7 already exists: the duplicate insert fails mid-batch on
    // one participant and the whole cross-shard batch must abort.
    std::vector<Op> bad;
    for (RowId key = 21; key <= 40; ++key)
        bad.push_back(Op::insert(key, std::string("doomed")));
    bad.push_back(Op::insert(7, std::string("dup")));
    EXPECT_FALSE(conn->runAtomic(bad).isOk());
    EXPECT_GE(env.stats.get(stats::kShardCrossAborts), 1u);

    EXPECT_EQ(dumpAll(*db), before);
    // The engine stays fully usable.
    NVWAL_CHECK_OK(conn->insert(1000, std::string("alive")));
}

TEST(ShardTxn, GtidsMonotonicAcrossReopen)
{
    Env env(testEnv());
    const ShardConfig config = testShards(2);
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, config, &db));
    std::uint64_t last = 0;
    {
        std::unique_ptr<ShardedConnection> conn;
        NVWAL_CHECK_OK(db->connect(&conn));
        std::vector<Op> ops;
        for (RowId key = 1; key <= 16; ++key)
            ops.push_back(Op::insert(key, std::string("x")));
        NVWAL_CHECK_OK(conn->runAtomic(ops));
        last = db->nextGtid();
    }
    // A reopen must never reissue a gtid any surviving PREPARE or
    // DECISION record carries: a recycled id could make recovery
    // resolve a new in-doubt transaction against a stale decision.
    db.reset();
    NVWAL_CHECK_OK(ShardedDatabase::open(env, config, &db));
    EXPECT_GT(db->nextGtid(), last - 1);
}

TEST(ShardTxn, VacuumRefusedOnMembers)
{
    Env env(testEnv());
    std::unique_ptr<ShardedDatabase> db;
    NVWAL_CHECK_OK(ShardedDatabase::open(env, testShards(2), &db));
    EXPECT_EQ(db->shard(0).vacuum().code(), StatusCode::Unsupported);
}

// ---- crash sweep ----------------------------------------------------

/**
 * The acceptance sweep: a scripted workload mixing single-shard and
 * cross-shard batches, crash-injected at EVERY NVRAM device
 * operation it issues -- which covers every point between the first
 * PREPARE's first byte and the last DECISION's commit mark -- and
 * recovered across the shard set against the shadow-model oracle.
 * All-or-nothing across shards is checked at every point.
 */
TEST(ShardCrash, ExhaustiveSweepIsAtomicAcrossShards)
{
    faultsim::ShardSweepConfig config;
    config.env = testEnv();
    config.shard = testShards(3);
    config.shard.dbTemplate.checkpointThreshold = 1000;

    for (RowId key = 1; key <= 30; ++key) {
        config.warmup.push_back(faultsim::ShardTxnStep::txn(
            "warm", {Op::insert(key, testutil::makeValue(32, key))}));
    }

    // Single-shard updates, then cross-shard batches (the 2PC
    // window), then a mixed batch with removes, then a checkpoint
    // and one more cross-shard batch so post-checkpoint records are
    // swept too.
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "single", {Op::update(1, std::string("s1"))}));
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross",
        {Op::update(2, std::string("c1")),
         Op::update(3, std::string("c2")),
         Op::update(4, std::string("c3")),
         Op::update(5, std::string("c4"))}));
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross",
        {Op::insert(100, std::string("n1")),
         Op::insert(101, std::string("n2")),
         Op::insert(102, std::string("n3")),
         Op::remove(6), Op::remove(7)}));
    config.workload.push_back(faultsim::ShardTxnStep::checkpointAll());
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross",
        {Op::update(8, std::string("z1")),
         Op::update(9, std::string("z2")),
         Op::update(10, std::string("z3"))}));

    config.policies = {
        faultsim::PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5},
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2}, 0.5},
    };

    faultsim::ShardSweepReport report;
    faultsim::ShardCrashSweep sweep(config);
    NVWAL_CHECK_OK(sweep.run(&report));
    EXPECT_GT(report.totalOps, 0u);
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_GT(report.crashes, 0u);
    // The sweep must actually have caught shards between PREPARE and
    // DECISION: recovery resolved at least one in-doubt transaction.
    EXPECT_GT(report.indoubtResolved, 0u);
    EXPECT_TRUE(report.ok()) << report.summary();
}

/** Same sweep shape under Eager sync (per-frame persist barriers). */
TEST(ShardCrash, EagerSweepStaysAtomic)
{
    faultsim::ShardSweepConfig config;
    config.env = testEnv();
    config.shard = testShards(2);
    config.shard.dbTemplate.nvwal.syncMode = SyncMode::Eager;
    config.shard.dbTemplate.checkpointThreshold = 1000;

    for (RowId key = 1; key <= 10; ++key) {
        config.warmup.push_back(faultsim::ShardTxnStep::txn(
            "warm", {Op::insert(key, testutil::makeValue(24, key))}));
    }
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross",
        {Op::update(1, std::string("a")),
         Op::update(2, std::string("b")),
         Op::update(3, std::string("c"))}));
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "single", {Op::update(4, std::string("d"))}));

    config.policies = {
        faultsim::PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5}};

    faultsim::ShardSweepReport report;
    faultsim::ShardCrashSweep sweep(config);
    NVWAL_CHECK_OK(sweep.run(&report));
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_TRUE(report.ok()) << report.summary();
}

/**
 * Under ChecksumAsync a single-shard step bypasses 2PC and commits
 * probabilistically; the strict shard oracle cannot express that
 * loss, so the sweep rejects such steps up front.
 */
TEST(ShardCrash, ChecksumAsyncRejected)
{
    faultsim::ShardSweepConfig config;
    config.env = testEnv();
    config.shard = testShards(2);
    config.shard.dbTemplate.nvwal.syncMode = SyncMode::ChecksumAsync;
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross", {Op::insert(1, std::string("x"))}));
    faultsim::ShardSweepReport report;
    faultsim::ShardCrashSweep sweep(config);
    EXPECT_EQ(sweep.run(&report).code(), StatusCode::InvalidArgument);
}

/**
 * Cross-shard 2PC stays strictly atomic even under ChecksumAsync:
 * PREPARE/DECISION units harden eagerly in every sync mode, so the
 * usual shard oracle applies unchanged. Regression for the bug
 * where writePrepare left staged data frames unflushed in CS mode
 * (a torn prepared unit could be re-staged as garbage and applied
 * by a later COMMIT decision).
 */
TEST(ShardCrash, ChecksumAsyncCrossShardSweepIsStrict)
{
    faultsim::ShardSweepConfig config;
    config.env = testEnv();
    config.shard = testShards(2);
    config.shard.dbTemplate.nvwal.syncMode = SyncMode::ChecksumAsync;
    config.shard.dbTemplate.checkpointThreshold = 1000;

    for (RowId key = 1; key <= 10; ++key) {
        config.warmup.push_back(faultsim::ShardTxnStep::txn(
            "warm", {Op::insert(key, testutil::makeValue(24, key))}));
    }
    // Key routing (hash, 2 shards): 1,2,3 -> shard 0; 4,9 -> shard 1.
    // Every step must span both shards: a single-shard step would be
    // rejected up front (see ChecksumAsyncRejected above).
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross",
        {Op::update(1, std::string("a")),
         Op::update(2, std::string("b")),
         Op::update(4, std::string("c"))}));
    config.workload.push_back(faultsim::ShardTxnStep::txn(
        "cross",
        {Op::insert(100, std::string("n1")),
         Op::insert(102, std::string("n2")),
         Op::remove(9)}));

    config.policies = {
        faultsim::PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5},
        faultsim::PolicyRun{FailurePolicy::Adversarial, {3, 4}, 0.5},
    };

    faultsim::ShardSweepReport report;
    faultsim::ShardCrashSweep sweep(config);
    NVWAL_CHECK_OK(sweep.run(&report));
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_GT(report.indoubtResolved, 0u);
    EXPECT_TRUE(report.ok()) << report.summary();
}

} // namespace
} // namespace nvwal
