/**
 * @file
 * Unit tests for the NVWAL log itself: frame placement, differential
 * logging, all three sync modes, the user-level heap protocol,
 * checkpointing and post-crash recovery (paper sections 3 and 4).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/nvwal_log.hpp"
#include "db/env.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;
constexpr std::uint32_t kReserved = 24;

struct SchemeParam
{
    SyncMode sync;
    bool diff;
    bool userHeap;
    const char *label;
};

class NvwalLogTest : public ::testing::TestWithParam<SchemeParam>
{
  protected:
    NvwalLogTest()
        : env(makeEnvConfig()),
          dbFile(env.fs, "t.db", kPageSize)
    {
        NVWAL_CHECK_OK(dbFile.open());
        config.syncMode = GetParam().sync;
        config.diffLogging = GetParam().diff;
        config.userHeap = GetParam().userHeap;
        log = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                         kPageSize, kReserved, config,
                                         env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log->recover(&db_size));
        EXPECT_EQ(db_size, 0u);
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::tuna(500);
        return c;
    }

    ByteBuffer
    makePage(std::uint64_t seed) const
    {
        ByteBuffer page = testutil::makeValue(kPageSize, seed);
        std::memset(page.data() + kPageSize - kReserved, 0, kReserved);
        return page;
    }

    Status
    commitPage(PageNo no, const ByteBuffer &page,
               const DirtyRanges &ranges, std::uint32_t db_size)
    {
        std::vector<FrameWrite> frames{
            FrameWrite{no, testutil::spanOf(page), &ranges}};
        return log->writeFrames(frames, true, db_size);
    }

    Status
    commitFullPage(PageNo no, const ByteBuffer &page,
                   std::uint32_t db_size)
    {
        DirtyRanges ranges;
        ranges.mark(0, kPageSize);
        return commitPage(no, page, ranges, db_size);
    }

    /** Reopen the log over the same NVRAM (volatile state rebuilt). */
    std::unique_ptr<NvwalLog>
    reopen(std::uint32_t *db_size)
    {
        auto fresh = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                                kPageSize, kReserved,
                                                config, env.stats);
        NVWAL_CHECK_OK(fresh->recover(db_size));
        return fresh;
    }

    Env env;
    DbFile dbFile;
    NvwalConfig config;
    std::unique_ptr<NvwalLog> log;
};

TEST_P(NvwalLogTest, WriteThenReadBack)
{
    const ByteBuffer page = makePage(1);
    NVWAL_CHECK_OK(commitFullPage(3, page, 3));
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(log->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
    EXPECT_GE(log->framesSinceCheckpoint(), 1u);
}

TEST_P(NvwalLogTest, DiffFramesLayerOverBase)
{
    // Commit a full page, then a small dirty range; the read must
    // reflect base + diff.
    ByteBuffer page = makePage(2);
    NVWAL_CHECK_OK(commitFullPage(3, page, 3));

    std::memset(page.data() + 100, 0xAB, 50);
    DirtyRanges ranges;
    ranges.mark(100, 150);
    NVWAL_CHECK_OK(commitPage(3, page, ranges, 3));

    ByteBuffer out(kPageSize);
    ASSERT_TRUE(log->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
}

TEST_P(NvwalLogTest, CommittedStateSurvivesPessimisticPowerFailure)
{
    const ByteBuffer p3 = makePage(3);
    const ByteBuffer p4 = makePage(4);
    NVWAL_CHECK_OK(commitFullPage(3, p3, 4));
    NVWAL_CHECK_OK(commitFullPage(4, p4, 4));

    if (config.syncMode == SyncMode::ChecksumAsync) {
        // Asynchronous commit gives no pessimistic guarantee; its
        // crash behaviour is covered by dedicated tests below.
        return;
    }
    env.powerFail(FailurePolicy::Pessimistic);
    std::uint32_t db_size = 0;
    auto fresh = reopen(&db_size);
    EXPECT_EQ(db_size, 4u);
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(fresh->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p3);
    ASSERT_TRUE(fresh->readPage(4, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p4);
}

TEST_P(NvwalLogTest, UncommittedFramesDiscardedOnRecovery)
{
    const ByteBuffer p3 = makePage(5);
    NVWAL_CHECK_OK(commitFullPage(3, p3, 3));
    // Frames without a commit mark...
    const ByteBuffer p4 = makePage(6);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize);
    std::vector<FrameWrite> frames{
        FrameWrite{4, testutil::spanOf(p4), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, false, 0));

    env.powerFail(FailurePolicy::AllSurvive);
    std::uint32_t db_size = 0;
    auto fresh = reopen(&db_size);
    EXPECT_EQ(db_size, 3u);
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(fresh->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_TRUE(fresh->readPage(4, ByteSpan(out.data(), out.size())).isNotFound());
    // The log accepts new commits after discarding the tail.
    const ByteBuffer p5 = makePage(7);
    DirtyRanges r5;
    r5.mark(0, kPageSize);
    std::vector<FrameWrite> f5{FrameWrite{5, testutil::spanOf(p5), &r5}};
    NVWAL_CHECK_OK(fresh->writeFrames(f5, true, 5));
    ASSERT_TRUE(fresh->readPage(5, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p5);
}

TEST_P(NvwalLogTest, CheckpointWritesBackTruncatesAndFreesNvram)
{
    const std::uint64_t used_before =
        env.heap.countBlocks(BlockState::InUse);
    const ByteBuffer p3 = makePage(8);
    const ByteBuffer p4 = makePage(9);
    NVWAL_CHECK_OK(commitFullPage(3, p3, 4));
    NVWAL_CHECK_OK(commitFullPage(4, p4, 4));
    EXPECT_GT(log->nodeCount(), 0u);

    NVWAL_CHECK_OK(log->checkpoint());
    EXPECT_EQ(log->framesSinceCheckpoint(), 0u);
    EXPECT_EQ(log->nodeCount(), 0u);
    // All log NVRAM returned to the heap (the header block stays).
    EXPECT_EQ(env.heap.countBlocks(BlockState::InUse), used_before);

    ByteBuffer out(kPageSize);
    EXPECT_TRUE(log->readPage(3, ByteSpan(out.data(), out.size())).isNotFound());
    NVWAL_CHECK_OK(dbFile.readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p3);
    NVWAL_CHECK_OK(dbFile.readPage(4, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p4);

    // And the log keeps working in the next checkpoint epoch.
    const ByteBuffer p5 = makePage(10);
    NVWAL_CHECK_OK(commitFullPage(5, p5, 5));
    ASSERT_TRUE(log->readPage(5, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p5);
    std::uint32_t db_size = 0;
    auto fresh = reopen(&db_size);
    EXPECT_EQ(db_size, 5u);
}

TEST_P(NvwalLogTest, StaleFramesFromPreviousEpochAreIgnored)
{
    const ByteBuffer p3 = makePage(11);
    NVWAL_CHECK_OK(commitFullPage(3, p3, 3));
    NVWAL_CHECK_OK(log->checkpoint());
    std::uint32_t db_size = 0;
    auto fresh = reopen(&db_size);
    EXPECT_EQ(db_size, 0u);
    EXPECT_EQ(fresh->framesSinceCheckpoint(), 0u);
}

TEST_P(NvwalLogTest, MultiPageTransactionIsAtomic)
{
    std::vector<ByteBuffer> pages;
    std::vector<DirtyRanges> ranges(5);
    std::vector<FrameWrite> frames;
    for (PageNo no = 3; no < 8; ++no) {
        pages.push_back(makePage(no));
        ranges[no - 3].mark(0, kPageSize);
        frames.push_back(FrameWrite{no, testutil::spanOf(pages.back()),
                                    &ranges[no - 3]});
    }
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 8));

    env.powerFail(config.syncMode == SyncMode::ChecksumAsync
                      ? FailurePolicy::AllSurvive
                      : FailurePolicy::Pessimistic);
    std::uint32_t db_size = 0;
    auto fresh = reopen(&db_size);
    EXPECT_EQ(db_size, 8u);
    ByteBuffer out(kPageSize);
    for (PageNo no = 3; no < 8; ++no) {
        ASSERT_TRUE(fresh->readPage(no, ByteSpan(out.data(), out.size())).isOk());
        EXPECT_EQ(out, pages[no - 3]);
    }
}

TEST_P(NvwalLogTest, EmptyCommitStillRecordsDatabaseSize)
{
    const ByteBuffer page = makePage(7);
    NVWAL_CHECK_OK(commitFullPage(3, page, 3));
    EXPECT_EQ(log->committedDbSize(), 3u);

    // A commit that dirtied no pages (every store was a no-op) still
    // observed the database at a possibly larger size; dropping the
    // update would leave committedDbSize() stale and truncate the
    // tail on the next pager resync.
    NVWAL_CHECK_OK(log->writeFrames({}, true, 9));
    EXPECT_EQ(log->committedDbSize(), 9u);

    // Same hazard on the group path with an all-empty group.
    std::vector<TxnFrames> txns(1);
    txns[0].dbSizePages = 11;
    NVWAL_CHECK_OK(log->writeFrameGroup(txns));
    EXPECT_EQ(log->committedDbSize(), 11u);
}

TEST_P(NvwalLogTest, BaseFileReadFaultPropagatesAsStatus)
{
    // Put the base image of page 3 into the .db file, then layer a
    // diff frame over it so materialization must read the file. The
    // image cache would shield the file read (the checkpointed base
    // image survives truncation and serves as the replay base), so
    // reopen the log without one.
    config.materializeCacheEntries = 0;
    log = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                     kPageSize, kReserved, config,
                                     env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(log->recover(&db_size));

    ByteBuffer page = makePage(5);
    NVWAL_CHECK_OK(commitFullPage(3, page, 3));
    NVWAL_CHECK_OK(log->checkpoint());

    std::memset(page.data() + 100, 0xAB, 50);
    DirtyRanges diff;
    diff.mark(100, 150);
    NVWAL_CHECK_OK(commitPage(3, page, diff, 3));

    if (!GetParam().diff) {
        // Full-frame logging never reads the base; nothing to test.
        return;
    }
    env.fs.injectReadFaults(1);
    ByteBuffer out(kPageSize);
    const Status s = log->readPage(3, ByteSpan(out.data(), out.size()));
    EXPECT_FALSE(s.isOk());

    // The fault was consumed and nothing was cached: the same read
    // succeeds afterwards with the correct merged image.
    ASSERT_TRUE(log->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, NvwalLogTest,
    ::testing::Values(
        SchemeParam{SyncMode::Lazy, false, false, "LS"},
        SchemeParam{SyncMode::Lazy, true, false, "LS_Diff"},
        SchemeParam{SyncMode::ChecksumAsync, true, false, "CS_Diff"},
        SchemeParam{SyncMode::Lazy, false, true, "UH_LS"},
        SchemeParam{SyncMode::Lazy, true, true, "UH_LS_Diff"},
        SchemeParam{SyncMode::ChecksumAsync, true, true, "UH_CS_Diff"},
        SchemeParam{SyncMode::Eager, true, true, "UH_E_Diff"}),
    [](const auto &info) { return std::string(info.param.label); });

// ---- scheme-specific behaviour ------------------------------------

class NvwalSchemeTest : public ::testing::Test
{
  protected:
    NvwalSchemeTest() : env(makeEnvConfig()), dbFile(env.fs, "t.db",
                                                     kPageSize)
    {
        NVWAL_CHECK_OK(dbFile.open());
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::tuna(500);
        return c;
    }

    ByteBuffer
    makePage(std::uint64_t seed) const
    {
        ByteBuffer page = testutil::makeValue(kPageSize, seed);
        std::memset(page.data() + kPageSize - kReserved, 0, kReserved);
        return page;
    }

    std::unique_ptr<NvwalLog>
    makeLog(SyncMode sync, bool diff, bool user_heap)
    {
        NvwalConfig config;
        config.syncMode = sync;
        config.diffLogging = diff;
        config.userHeap = user_heap;
        auto log = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                              kPageSize, kReserved, config,
                                              env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log->recover(&db_size));
        return log;
    }

    Env env;
    DbFile dbFile;
};

TEST_F(NvwalSchemeTest, SchemeNamesMatchPaperLegend)
{
    EXPECT_STREQ(makeLog(SyncMode::Lazy, false, false)->name(),
                 "NVWAL LS");
    EXPECT_STREQ(makeLog(SyncMode::Lazy, true, false)->name(),
                 "NVWAL LS+Diff");
    EXPECT_STREQ(makeLog(SyncMode::ChecksumAsync, true, false)->name(),
                 "NVWAL CS+Diff");
    EXPECT_STREQ(makeLog(SyncMode::Lazy, false, true)->name(),
                 "NVWAL UH+LS");
    EXPECT_STREQ(makeLog(SyncMode::Lazy, true, true)->name(),
                 "NVWAL UH+LS+Diff");
    EXPECT_STREQ(makeLog(SyncMode::ChecksumAsync, true, true)->name(),
                 "NVWAL UH+CS+Diff");
}

TEST_F(NvwalSchemeTest, DiffLoggingWritesFarFewerBytes)
{
    // Table 2's mechanism: a small dirty range logs ~its size, not a
    // page.
    auto run = [&](bool diff) {
        auto log = makeLog(SyncMode::Lazy, diff, true);
        ByteBuffer page = testutil::makeValue(kPageSize, 1);
        DirtyRanges ranges;
        ranges.mark(200, 350);
        const auto before = env.stats.get(stats::kNvramBytesLogged);
        std::vector<FrameWrite> frames{
            FrameWrite{3, testutil::spanOf(page), &ranges}};
        NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));
        NVWAL_CHECK_OK(log->checkpoint());
        return env.stats.get(stats::kNvramBytesLogged) - before;
    };
    const std::uint64_t full = run(false);
    const std::uint64_t diff = run(true);
    EXPECT_GE(full, kPageSize);
    EXPECT_LT(diff, 300u);
}

TEST_F(NvwalSchemeTest, UserHeapAmortizesHeapCalls)
{
    auto heapCalls = [&](bool user_heap) {
        auto log = makeLog(SyncMode::Lazy, true, user_heap);
        ByteBuffer page = testutil::makeValue(kPageSize, 2);
        const auto before = env.stats.get(stats::kHeapCalls);
        for (int i = 0; i < 50; ++i) {
            DirtyRanges ranges;
            ranges.mark(0, 400);
            std::vector<FrameWrite> frames{
                FrameWrite{3, testutil::spanOf(page), &ranges}};
            NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));
        }
        const auto calls = env.stats.get(stats::kHeapCalls) - before;
        NVWAL_CHECK_OK(log->checkpoint());
        return calls;
    };
    const std::uint64_t without = heapCalls(false);
    const std::uint64_t with = heapCalls(true);
    EXPECT_LT(with, without / 2);
}

TEST_F(NvwalSchemeTest, UserHeapPacksMultipleFramesPerBlock)
{
    // The paper reports ~4.9 frames per 8 KB block for the insert
    // workload (section 3.3).
    auto log = makeLog(SyncMode::Lazy, true, true);
    ByteBuffer page = testutil::makeValue(kPageSize, 3);
    for (int i = 0; i < 40; ++i) {
        DirtyRanges ranges;
        ranges.mark(0, 1200);
        std::vector<FrameWrite> frames{
            FrameWrite{3, testutil::spanOf(page), &ranges}};
        NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));
    }
    EXPECT_GT(log->framesPerNode(), 2.0);
}

TEST_F(NvwalSchemeTest, LazyFlushesAllFrameLines)
{
    // Lazy synchronization must flush every line a frame touches --
    // correctness depends on it under the pessimistic policy.
    auto log = makeLog(SyncMode::Lazy, false, true);
    const ByteBuffer page = testutil::makeValue(kPageSize, 4);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize);
    const auto before = env.stats.get(stats::kNvramLinesFlushed);
    std::vector<FrameWrite> frames{
        FrameWrite{3, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));
    const auto flushed =
        env.stats.get(stats::kNvramLinesFlushed) - before;
    // ~ a full page of lines (4096/32 = 128) plus headers/metadata.
    EXPECT_GE(flushed, kPageSize / 32);
}

TEST_F(NvwalSchemeTest, ChecksumAsyncFlushesAlmostNothing)
{
    auto log = makeLog(SyncMode::ChecksumAsync, false, true);
    const ByteBuffer page = testutil::makeValue(kPageSize, 5);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize);
    const auto before = env.stats.get(stats::kNvramLinesFlushed);
    std::vector<FrameWrite> frames{
        FrameWrite{3, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));
    const auto flushed =
        env.stats.get(stats::kNvramLinesFlushed) - before;
    // Only the commit-mark/checksum line plus block-allocation
    // metadata (node link + tri-state flags) -- none of the 128
    // payload lines (section 4.2).
    EXPECT_LE(flushed, 8u);
}

TEST_F(NvwalSchemeTest, EagerIsSlowerThanLazy)
{
    // Figure 5: eager per-frame synchronization costs more simulated
    // time than lazy batching for the same work.
    auto timeFor = [&](SyncMode sync) {
        auto log = makeLog(sync, false, true);
        ByteBuffer page = testutil::makeValue(kPageSize, 6);
        DirtyRanges ranges;
        ranges.mark(0, kPageSize);
        const SimTime start = env.clock.now();
        std::vector<FrameWrite> frames;
        std::vector<DirtyRanges> all_ranges(8);
        for (PageNo no = 3; no < 11; ++no) {
            all_ranges[no - 3].mark(0, kPageSize);
            frames.push_back(FrameWrite{no, testutil::spanOf(page),
                                        &all_ranges[no - 3]});
        }
        NVWAL_CHECK_OK(log->writeFrames(frames, true, 11));
        const SimTime elapsed = env.clock.now() - start;
        NVWAL_CHECK_OK(log->checkpoint());
        return elapsed;
    };
    const SimTime lazy = timeFor(SyncMode::Lazy);
    const SimTime eager = timeFor(SyncMode::Eager);
    EXPECT_LT(lazy, eager);
}

TEST_F(NvwalSchemeTest, ChecksumAsyncDetectsLostFramesProbabilistically)
{
    // Section 4.2: if the commit mark + checksum survive but the log
    // entries do not, recovery must invalidate the transaction via
    // the checksum mismatch.
    auto log = makeLog(SyncMode::ChecksumAsync, false, true);
    const ByteBuffer p3 = makePage(7);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize);
    std::vector<FrameWrite> frames{
        FrameWrite{3, testutil::spanOf(p3), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));

    // Pessimistic failure: the frame payload (never flushed) is
    // gone; the flushed commit/checksum line may or may not be in
    // the persist queue -- drop everything volatile.
    env.powerFail(FailurePolicy::Pessimistic);
    NvwalConfig config;
    config.syncMode = SyncMode::ChecksumAsync;
    config.diffLogging = false;
    config.userHeap = true;
    NvwalLog fresh(env.heap, env.pmem, dbFile, kPageSize, kReserved,
                   config, env.stats);
    std::uint32_t db_size = 99;
    NVWAL_CHECK_OK(fresh.recover(&db_size));
    EXPECT_EQ(db_size, 0u);  // transaction correctly invalidated
    ByteBuffer out(kPageSize);
    EXPECT_TRUE(fresh.readPage(3, ByteSpan(out.data(), out.size())).isNotFound());
}

TEST_F(NvwalSchemeTest, NodeCountRecountedAfterTailTruncation)
{
    // Regression: recovery that truncates uncommitted tail nodes must
    // recount _nodesSinceCheckpoint from the surviving chain. It used
    // to keep the walk's count (which included the freed tail), so
    // framesPerNode() and the next checkpoint's node accounting were
    // skewed until the following checkpoint.
    auto log = makeLog(SyncMode::Lazy, false, false);  // 1 frame/node
    const ByteBuffer page = makePage(4);
    DirtyRanges ranges;
    ranges.mark(0, kPageSize);
    std::vector<FrameWrite> committed{
        FrameWrite{2, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(committed, true, 2));
    // Three uncommitted frames: Lazy flushes them to NVRAM on every
    // call, so after a pessimistic failure the nodes are durable but
    // must be truncated (and freed) by recovery.
    for (PageNo no = 3; no <= 5; ++no) {
        std::vector<FrameWrite> frames{
            FrameWrite{no, testutil::spanOf(page), &ranges}};
        NVWAL_CHECK_OK(log->writeFrames(frames, false, no));
    }
    EXPECT_EQ(log->nodeCount(), 4u);

    env.powerFail(FailurePolicy::Pessimistic);
    NvwalConfig config;
    config.syncMode = SyncMode::Lazy;
    config.diffLogging = false;
    config.userHeap = false;
    NvwalLog fresh(env.heap, env.pmem, dbFile, kPageSize, kReserved,
                   config, env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh.recover(&db_size));
    EXPECT_EQ(db_size, 2u);
    EXPECT_EQ(fresh.nodeCount(), 1u);
    EXPECT_EQ(fresh.nodesSinceCheckpoint(), fresh.nodeCount());
    EXPECT_DOUBLE_EQ(fresh.framesPerNode(), 1.0);

    // The invariant must keep holding as the log grows again.
    std::vector<FrameWrite> more{
        FrameWrite{3, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(fresh.writeFrames(more, true, 3));
    EXPECT_EQ(fresh.nodesSinceCheckpoint(), fresh.nodeCount());
}

TEST(NvwalBaseline, NodeAllocationIsCrashAtomic)
{
    // Regression: the per-frame (non-user-heap) baseline used a
    // single nvMalloc(), marking the block in-use before it was
    // linked into the log chain. A crash in that window left an
    // in-use block nothing references -- an NVRAM leak no recovery
    // could reclaim. Both modes now allocate pending, link, then
    // mark in-use (Algorithm 1), so sweep the whole append window
    // and require every in-use block to stay reachable.
    bool completed = false;
    for (std::uint64_t at = 1; !completed; ++at) {
        EnvConfig env_config;
        env_config.cost = CostModel::tuna(500);
        Env env(env_config);
        DbFile db_file(env.fs, "t.db", kPageSize);
        NVWAL_CHECK_OK(db_file.open());
        NvwalConfig config;
        config.syncMode = SyncMode::Lazy;
        config.diffLogging = false;
        config.userHeap = false;
        NvwalLog log(env.heap, env.pmem, db_file, kPageSize, kReserved,
                     config, env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log.recover(&db_size));
        ByteBuffer page = testutil::makeValue(kPageSize, 1);
        std::memset(page.data() + kPageSize - kReserved, 0, kReserved);
        DirtyRanges ranges;
        ranges.mark(0, kPageSize);
        std::vector<FrameWrite> seed{
            FrameWrite{2, testutil::spanOf(page), &ranges}};
        NVWAL_CHECK_OK(log.writeFrames(seed, true, 2));

        env.nvramDevice.setScheduledCrashPolicy(
            FailurePolicy::Pessimistic);
        env.nvramDevice.scheduleCrashAtOp(at);
        try {
            std::vector<FrameWrite> victim{
                FrameWrite{3, testutil::spanOf(page), &ranges}};
            NVWAL_CHECK_OK(log.writeFrames(victim, true, 3));
            completed = true;
        } catch (const PowerFailure &) {
            env.fs.crash();
            NVWAL_CHECK_OK(env.heap.attach());
        }
        env.nvramDevice.scheduleCrashAtOp(0);

        NvwalLog fresh(env.heap, env.pmem, db_file, kPageSize,
                       kReserved, config, env.stats);
        NVWAL_CHECK_OK(fresh.recover(&db_size));
        EXPECT_EQ(env.heap.countBlocks(BlockState::Pending), 0u)
            << "op " << at;
        EXPECT_EQ(env.heap.countBlocks(BlockState::InUse),
                  fresh.reachableNvramBlocks())
            << "op " << at;
    }
}

TEST(NvwalHeaderInit, CrashDuringFirstRecoverNeverLeaks)
{
    // Regression: header initialization now follows the pending ->
    // bind-root -> in-use protocol. The old nvMalloc() version leaked
    // the header block if the crash hit before setRoot(), and a crash
    // between setRoot() and the used-flag left a root naming a
    // non-in-use block, which the next recovery must heal by
    // re-initializing. Sweep every device op of the very first
    // recover() under both policies.
    for (FailurePolicy policy :
         {FailurePolicy::Pessimistic, FailurePolicy::Adversarial}) {
        bool completed = false;
        for (std::uint64_t at = 1; !completed; ++at) {
            EnvConfig env_config;
            env_config.cost = CostModel::tuna(500);
            Env env(env_config);
            DbFile db_file(env.fs, "t.db", kPageSize);
            NVWAL_CHECK_OK(db_file.open());
            NvwalConfig config;

            env.nvramDevice.reseed(at * 131 + 7);
            env.nvramDevice.setScheduledCrashPolicy(policy, 0.5);
            env.nvramDevice.scheduleCrashAtOp(at);
            bool crashed = false;
            {
                NvwalLog log(env.heap, env.pmem, db_file, kPageSize,
                             kReserved, config, env.stats);
                std::uint32_t db_size = 0;
                try {
                    NVWAL_CHECK_OK(log.recover(&db_size));
                    completed = true;
                } catch (const PowerFailure &) {
                    crashed = true;
                }
            }
            env.nvramDevice.scheduleCrashAtOp(0);
            if (crashed) {
                env.fs.crash();
                NVWAL_CHECK_OK(env.heap.attach());
            }

            NvwalLog fresh(env.heap, env.pmem, db_file, kPageSize,
                           kReserved, config, env.stats);
            std::uint32_t db_size = 99;
            NVWAL_CHECK_OK(fresh.recover(&db_size));
            EXPECT_EQ(db_size, 0u);
            EXPECT_EQ(env.heap.countBlocks(BlockState::Pending), 0u)
                << "op " << at;
            EXPECT_EQ(env.heap.countBlocks(BlockState::InUse),
                      fresh.reachableNvramBlocks())
                << "op " << at;
        }
    }
}

} // namespace
} // namespace nvwal
