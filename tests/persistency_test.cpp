/**
 * @file
 * Tests for the memory-persistency models of section 4.4 (the
 * paper's future work, implemented here): strict persistency and
 * hardware epoch persistency, vs. the explicit-flush baseline.
 *
 * Checked properties:
 *  - durability semantics per model (strict: durable at the store;
 *    epoch: durable at the barrier; explicit: durable only after
 *    flush + fence + persist barrier);
 *  - software flushes are free (removed) under hardware models;
 *  - the paper's performance conjecture: strict persistency
 *    serializes persists and is slowest for bulk log writes, epoch
 *    persistency is at least as fast as explicit flushing;
 *  - NVWAL remains crash-consistent under every model.
 */

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

CostModel
tunaWith(PersistencyModel model, SimTime latency = 500)
{
    CostModel cost = CostModel::tuna(latency);
    cost.persistency = model;
    return cost;
}

TEST(Persistency, StrictStoresAreImmediatelyDurable)
{
    SimClock clock;
    MetricsRegistry stats;
    const CostModel cost = tunaWith(PersistencyModel::Strict);
    NvramDevice dev(1 << 20, cost.cacheLineSize, stats);
    Pmem pmem(dev, clock, cost, stats);

    const ByteBuffer data = testutil::makeValue(200, 1);
    pmem.memcpyToNvram(4096, testutil::spanOf(data));
    ByteBuffer out(200);
    dev.readDurable(4096, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
    EXPECT_EQ(dev.dirtyLineCount(), 0u);
}

TEST(Persistency, StrictChargesSerializedLineLatency)
{
    SimClock clock;
    MetricsRegistry stats;
    const CostModel cost = tunaWith(PersistencyModel::Strict, 1000);
    NvramDevice dev(1 << 20, cost.cacheLineSize, stats);
    Pmem pmem(dev, clock, cost, stats);

    const std::size_t lines = 64;
    const ByteBuffer data =
        testutil::makeValue(lines * cost.cacheLineSize, 2);
    const SimTime before = clock.now();
    pmem.memcpyToNvram(0, testutil::spanOf(data));
    // Store cost + one full media latency per line, no overlap.
    EXPECT_GE(clock.now() - before, lines * cost.nvramWriteLatencyNs);
}

TEST(Persistency, EpochStoresVolatileUntilBarrier)
{
    SimClock clock;
    MetricsRegistry stats;
    const CostModel cost = tunaWith(PersistencyModel::EpochHW);
    NvramDevice dev(1 << 20, cost.cacheLineSize, stats);
    Pmem pmem(dev, clock, cost, stats);

    const ByteBuffer data = testutil::makeValue(300, 3);
    pmem.memcpyToNvram(0, testutil::spanOf(data));
    ByteBuffer out(300);
    dev.readDurable(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, ByteBuffer(300, 0));  // still buffered

    pmem.memoryBarrier();  // epoch boundary
    dev.readDurable(0, ByteSpan(out.data(), out.size()));
    EXPECT_EQ(out, data);
}

TEST(Persistency, SoftwareFlushesAreRemovedUnderHardwareModels)
{
    for (PersistencyModel model :
         {PersistencyModel::Strict, PersistencyModel::EpochHW}) {
        SimClock clock;
        MetricsRegistry stats;
        const CostModel cost = tunaWith(model);
        NvramDevice dev(1 << 20, cost.cacheLineSize, stats);
        Pmem pmem(dev, clock, cost, stats);

        pmem.cacheLineFlush(0, 4096);
        EXPECT_EQ(stats.get(stats::kFlushSyscalls), 0u)
            << persistencyModelName(model);
        EXPECT_EQ(stats.get(stats::kTimeSyscallNs), 0u);
    }
}

TEST(Persistency, ConjectureStrictSlowerEpochFasterForBulkLogs)
{
    // Section 4.4: "strict persistency may degrade the performance
    // of NVWAL because it enforces strict (but unnecessary) ordering
    // constraints between persists"; relaxed persistency should do
    // at least as well as software flushing.
    auto txnTime = [](PersistencyModel model) {
        EnvConfig env_config;
        env_config.cost = CostModel::tuna(1500);
        env_config.cost.persistency = model;
        Env env(env_config);
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.nvwal.diffLogging = false;  // 128-line frames
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        const SimTime start = env.clock.now();
        for (RowId k = 0; k < 50; ++k) {
            NVWAL_CHECK_OK(db->insert(
                k, testutil::spanOf(testutil::makeValue(100, k))));
        }
        return env.clock.now() - start;
    };
    const SimTime explicit_ns = txnTime(PersistencyModel::Explicit);
    const SimTime strict_ns = txnTime(PersistencyModel::Strict);
    const SimTime epoch_ns = txnTime(PersistencyModel::EpochHW);
    EXPECT_GT(strict_ns, explicit_ns);
    EXPECT_LT(epoch_ns, explicit_ns);
}

/** NVWAL correctness must hold under every persistency model. */
class PersistencyCrash
    : public ::testing::TestWithParam<PersistencyModel>
{
};

TEST_P(PersistencyCrash, CommittedDataSurvivesPowerFailure)
{
    EnvConfig env_config;
    env_config.cost = tunaWith(GetParam());
    env_config.nvramBytes = 16 << 20;
    env_config.flashBlocks = 2048;
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (RowId k = 0; k < 30; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    env.powerFail(FailurePolicy::Pessimistic);

    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    NVWAL_CHECK_OK(recovered->verifyIntegrity());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(recovered->count(&n));
    EXPECT_EQ(n, 30u);
    ByteBuffer out;
    NVWAL_CHECK_OK(recovered->get(15, &out));
    EXPECT_EQ(out, testutil::makeValue(100, 15));
}

TEST_P(PersistencyCrash, CrashSweepKeepsAtomicity)
{
    // Injected power failures across the commit path; the victim
    // transaction must be all-or-nothing under every model.
    faultsim::SweepConfig config;
    config.env.cost = tunaWith(GetParam());
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db.walMode = WalMode::Nvwal;
    for (RowId key = 0; key < 10; ++key) {
        config.warmup.insert(
            key, faultsim::Workload::valueFor(
                     60, static_cast<std::uint64_t>(key)));
    }
    config.workload.phase("victim txn").begin();
    for (RowId key = 100; key < 103; ++key) {
        config.workload.insert(
            key, faultsim::Workload::valueFor(
                     60, static_cast<std::uint64_t>(key)));
    }
    config.workload.commit();
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.maxPoints = 40;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok())
        << persistencyModelName(GetParam()) << "\n" << report.summary();
    EXPECT_GT(report.crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Models, PersistencyCrash,
    ::testing::Values(PersistencyModel::Explicit,
                      PersistencyModel::Strict,
                      PersistencyModel::EpochHW),
    [](const auto &info) {
        switch (info.param) {
          case PersistencyModel::Explicit: return std::string("Explicit");
          case PersistencyModel::Strict: return std::string("Strict");
          case PersistencyModel::EpochHW: return std::string("EpochHW");
        }
        return std::string("Unknown");
    });

} // namespace
} // namespace nvwal
