/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef NVWAL_TESTS_TEST_UTIL_HPP
#define NVWAL_TESTS_TEST_UTIL_HPP

#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace nvwal::testutil
{

/** Deterministic pseudo-random payload of @p size bytes. */
inline ByteBuffer
makeValue(std::size_t size, std::uint64_t seed)
{
    Rng rng(seed);
    ByteBuffer out(size);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.next());
    return out;
}

/** Span over a string literal's bytes. */
inline ConstByteSpan
bytesOf(const std::string &s)
{
    return ConstByteSpan(reinterpret_cast<const std::uint8_t *>(s.data()),
                         s.size());
}

inline ConstByteSpan
spanOf(const ByteBuffer &b)
{
    return ConstByteSpan(b.data(), b.size());
}

} // namespace nvwal::testutil

#endif // NVWAL_TESTS_TEST_UTIL_HPP
