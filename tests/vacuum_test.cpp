/**
 * @file
 * Tests for VACUUM (compact rebuild) and the file-system rename it
 * relies on.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

EnvConfig
testEnv()
{
    EnvConfig c;
    c.cost = CostModel::nexus5();
    c.nvramBytes = 32 << 20;
    c.flashBlocks = 16384;
    return c;
}

TEST(FsRename, BasicAndReplaceSemantics)
{
    Env env(testEnv());
    ByteBuffer a(5000, 0xAA);
    ByteBuffer b(3000, 0xBB);
    NVWAL_CHECK_OK(env.fs.pwrite("a", 0, ConstByteSpan(a.data(), a.size())));
    NVWAL_CHECK_OK(env.fs.fsync("a"));
    NVWAL_CHECK_OK(env.fs.pwrite("b", 0, ConstByteSpan(b.data(), b.size())));
    NVWAL_CHECK_OK(env.fs.fsync("b"));

    // Replace b with a.
    NVWAL_CHECK_OK(env.fs.rename("a", "b"));
    EXPECT_FALSE(env.fs.exists("a"));
    EXPECT_EQ(env.fs.fileSize("b"), 5000u);
    ByteBuffer out(5000);
    NVWAL_CHECK_OK(env.fs.pread("b", 0, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, a);

    EXPECT_TRUE(env.fs.rename("missing", "x").isNotFound());
    NVWAL_CHECK_OK(env.fs.rename("b", "b"));  // no-op self-rename
    EXPECT_EQ(env.fs.fileSize("b"), 5000u);
}

TEST(FsRename, DurableAcrossCrash)
{
    Env env(testEnv());
    ByteBuffer a(4096, 0xCD);
    NVWAL_CHECK_OK(env.fs.pwrite("a", 0, ConstByteSpan(a.data(), a.size())));
    NVWAL_CHECK_OK(env.fs.fsync("a"));
    NVWAL_CHECK_OK(env.fs.rename("a", "c"));
    env.fs.crash();
    EXPECT_TRUE(env.fs.exists("c"));
    EXPECT_FALSE(env.fs.exists("a"));
    ByteBuffer out(4096);
    NVWAL_CHECK_OK(env.fs.pread("c", 0, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, a);
}

class VacuumTest : public ::testing::TestWithParam<WalMode>
{
  protected:
    VacuumTest() : env(testEnv())
    {
        config.walMode = GetParam();
        NVWAL_CHECK_OK(Database::open(env, config, &db));
    }

    std::map<RowId, ByteBuffer>
    dumpTable(const std::string &name)
    {
        Table *table;
        NVWAL_CHECK_OK(db->openTable(name, &table));
        std::map<RowId, ByteBuffer> content;
        NVWAL_CHECK_OK(table->scan(INT64_MIN, INT64_MAX,
                                   [&](RowId k, ConstByteSpan v) {
                                       content[k] =
                                           ByteBuffer(v.begin(), v.end());
                                       return true;
                                   }));
        return content;
    }

    Env env;
    DbConfig config;
    std::unique_ptr<Database> db;
};

TEST_P(VacuumTest, ShrinksAfterMassDeleteAndPreservesContent)
{
    NVWAL_CHECK_OK(db->createTable("blobs"));
    Table *blobs;
    NVWAL_CHECK_OK(db->openTable("blobs", &blobs));
    for (RowId k = 1; k <= 3000; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    NVWAL_CHECK_OK(
        blobs->insert(1, testutil::spanOf(testutil::makeValue(30000, 1))));
    // Delete 90% of the rows; the file keeps its high-water size.
    for (RowId k = 1; k <= 3000; ++k) {
        if (k % 10 != 0)
            NVWAL_CHECK_OK(db->remove(k));
    }
    NVWAL_CHECK_OK(db->checkpoint());
    const std::uint64_t size_before = env.fs.fileSize(config.name);
    const auto main_before = dumpTable("main");
    const auto blobs_before = dumpTable("blobs");

    NVWAL_CHECK_OK(db->vacuum());

    EXPECT_LT(env.fs.fileSize(config.name), size_before / 3);
    EXPECT_EQ(db->pager().freePageCount(), 0u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
    EXPECT_EQ(dumpTable("main"), main_before);
    EXPECT_EQ(dumpTable("blobs"), blobs_before);

    // Fully usable afterwards, including new transactions.
    NVWAL_CHECK_OK(db->insert(90001, "post-vacuum"));
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(90001, &out));
    EXPECT_EQ(out, toBytes("post-vacuum"));
}

TEST_P(VacuumTest, RejectedInsideTransaction)
{
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(1, "x"));
    EXPECT_EQ(db->vacuum().code(), StatusCode::Busy);
    NVWAL_CHECK_OK(db->commit());
    NVWAL_CHECK_OK(db->vacuum());
}

TEST_P(VacuumTest, StaleTempFileIsReplaced)
{
    // A leftover .vacuum file from an interrupted earlier vacuum
    // must not break or pollute the rebuild.
    ByteBuffer junk(8192, 0x5A);
    NVWAL_CHECK_OK(env.fs.pwrite(config.name + ".vacuum", 0,
                                 ConstByteSpan(junk.data(), junk.size())));
    NVWAL_CHECK_OK(env.fs.fsync(config.name + ".vacuum"));

    for (RowId k = 1; k <= 100; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    NVWAL_CHECK_OK(db->vacuum());
    NVWAL_CHECK_OK(db->verifyIntegrity());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 100u);
    EXPECT_FALSE(env.fs.exists(config.name + ".vacuum"));
}

TEST_P(VacuumTest, SurvivesReopenAndPowerFailureAfterVacuum)
{
    for (RowId k = 1; k <= 500; ++k) {
        NVWAL_CHECK_OK(db->insert(
            k, testutil::spanOf(testutil::makeValue(100, k))));
    }
    for (RowId k = 1; k <= 400; ++k)
        NVWAL_CHECK_OK(db->remove(k));
    NVWAL_CHECK_OK(db->vacuum());
    NVWAL_CHECK_OK(db->insert(1000, "after"));

    env.powerFail(FailurePolicy::Pessimistic);
    db.reset();
    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    NVWAL_CHECK_OK(recovered->verifyIntegrity());
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(recovered->count(&n));
    EXPECT_EQ(n, 101u);
    ByteBuffer out;
    NVWAL_CHECK_OK(recovered->get(1000, &out));
    EXPECT_EQ(out, toBytes("after"));
}

INSTANTIATE_TEST_SUITE_P(Modes, VacuumTest,
                         ::testing::Values(WalMode::Nvwal,
                                           WalMode::FileOptimized,
                                           WalMode::RollbackJournal),
                         [](const auto &info) {
                             switch (info.param) {
                               case WalMode::Nvwal:
                                 return std::string("Nvwal");
                               case WalMode::FileOptimized:
                                 return std::string("FileWal");
                               default:
                                 return std::string("Journal");
                             }
                         });

} // namespace
} // namespace nvwal
