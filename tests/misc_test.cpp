/**
 * @file
 * Coverage for smaller surfaces: the multi-range differential
 * logging extension (correctness + crash safety), block-device
 * tracing, Env power-failure wiring, and DbFile paging.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

EnvConfig
smallEnv()
{
    EnvConfig c;
    c.cost = CostModel::tuna(500);
    c.nvramBytes = 16 << 20;
    c.flashBlocks = 4096;
    return c;
}

DbConfig
multiRangeConfig()
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.diffGranularity = DiffGranularity::MultiRange;
    return config;
}

TEST(MultiRangeDiff, OracleEquivalence)
{
    Env env(smallEnv());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, multiRangeConfig(), &db));

    Rng rng(17);
    std::map<RowId, ByteBuffer> model;
    for (int step = 0; step < 800; ++step) {
        const RowId key = static_cast<RowId>(rng.nextBelow(250));
        const ByteBuffer v =
            testutil::makeValue(1 + rng.nextBelow(300), rng.next());
        if (model.count(key)) {
            if (rng.nextBool(0.5)) {
                NVWAL_CHECK_OK(db->update(key, testutil::spanOf(v)));
                model[key] = v;
            } else {
                NVWAL_CHECK_OK(db->remove(key));
                model.erase(key);
            }
        } else {
            NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(v)));
            model[key] = v;
        }
    }
    // Reopen: reconstruction from multi-range frames.
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, multiRangeConfig(), &db));
    NVWAL_CHECK_OK(db->verifyIntegrity());
    std::map<RowId, ByteBuffer> content;
    NVWAL_CHECK_OK(db->scan(INT64_MIN, INT64_MAX,
                            [&](RowId k, ConstByteSpan v) {
                                content[k] = ByteBuffer(v.begin(), v.end());
                                return true;
                            }));
    EXPECT_EQ(content, model);
}

TEST(MultiRangeDiff, LogsFewerBytesThanSingleRange)
{
    auto bytesFor = [](DiffGranularity granularity) {
        Env env(smallEnv());
        DbConfig config;
        config.walMode = WalMode::Nvwal;
        config.nvwal.diffGranularity = granularity;
        config.autoCheckpoint = false;
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        for (RowId k = 0; k < 200; ++k) {
            NVWAL_CHECK_OK(db->insert(
                k, testutil::spanOf(testutil::makeValue(100, k))));
        }
        return env.stats.get(stats::kNvramBytesLogged);
    };
    const std::uint64_t single = bytesFor(DiffGranularity::SingleRange);
    const std::uint64_t multi = bytesFor(DiffGranularity::MultiRange);
    EXPECT_LT(multi, single / 2);
}

TEST(MultiRangeDiff, CrashSweepStaysAtomic)
{
    faultsim::SweepConfig config;
    config.env = smallEnv();
    config.db = multiRangeConfig();
    for (RowId k = 0; k < 6; ++k) {
        config.warmup.insert(
            k, faultsim::Workload::valueFor(
                   100, static_cast<std::uint64_t>(k)));
    }
    config.workload.phase("victim txn")
        .begin()
        .update(3, faultsim::Workload::valueFor(100, 333))
        .insert(100, faultsim::Workload::valueFor(100, 100))
        .commit();
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1}, 0.5});
    config.maxPoints = 30;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.crashes, 0u);
}

TEST(BlockDeviceTrace, RecordsTaggedWrites)
{
    SimClock clock;
    MetricsRegistry stats;
    const CostModel cost = CostModel::nexus5();
    BlockDevice dev(256, 4096, clock, cost, stats);
    ByteBuffer block(4096, 0x11);

    dev.writeBlock(5, ConstByteSpan(block.data(), 4096), IoTag::DbFile);
    EXPECT_TRUE(dev.trace().empty());  // tracing off by default

    dev.setTracing(true);
    dev.writeBlock(6, ConstByteSpan(block.data(), 4096), IoTag::Journal);
    dev.writeBlock(7, ConstByteSpan(block.data(), 4096), IoTag::WalFile);
    ASSERT_EQ(dev.trace().size(), 2u);
    EXPECT_EQ(dev.trace()[0].block, 6u);
    EXPECT_EQ(dev.trace()[0].tag, IoTag::Journal);
    EXPECT_LT(dev.trace()[0].timeNs, dev.trace()[1].timeNs);
    EXPECT_EQ(dev.bytesWritten(IoTag::Journal), 4096u);
    EXPECT_EQ(dev.bytesWritten(IoTag::DbFile), 4096u);

    ByteBuffer out(4096);
    dev.readBlock(6, ByteSpan(out.data(), 4096));
    EXPECT_EQ(out, block);
    dev.clearTrace();
    EXPECT_TRUE(dev.trace().empty());
    EXPECT_STREQ(ioTagName(IoTag::Journal), "ext4-journal");
}

TEST(EnvWiring, PowerFailClearsEverythingVolatile)
{
    Env env(smallEnv());
    // NVRAM dirty line + unsynced file data.
    ByteBuffer data(64, 0x22);
    env.nvramDevice.write(1 << 20, ConstByteSpan(data.data(), 64));
    NVWAL_CHECK_OK(env.fs.pwrite("f", 0, ConstByteSpan(data.data(), 64)));
    env.powerFail(FailurePolicy::Pessimistic);
    EXPECT_EQ(env.nvramDevice.dirtyLineCount(), 0u);
    EXPECT_FALSE(env.fs.exists("f"));
    // The heap is re-attached and usable.
    NvOffset off;
    NVWAL_CHECK_OK(env.heap.nvMalloc(4096, &off));
}

TEST(DbFilePaging, PagesAreOneBasedAndSized)
{
    Env env(smallEnv());
    DbFile file(env.fs, "pages.db", 4096);
    NVWAL_CHECK_OK(file.open());
    EXPECT_EQ(file.pageCount(), 0u);
    const ByteBuffer p1 = testutil::makeValue(4096, 1);
    const ByteBuffer p3 = testutil::makeValue(4096, 3);
    NVWAL_CHECK_OK(file.writePage(1, testutil::spanOf(p1)));
    NVWAL_CHECK_OK(file.writePage(3, testutil::spanOf(p3)));  // hole at 2
    NVWAL_CHECK_OK(file.sync());
    EXPECT_EQ(file.pageCount(), 3u);
    ByteBuffer out(4096);
    NVWAL_CHECK_OK(file.readPage(1, ByteSpan(out.data(), 4096)));
    EXPECT_EQ(out, p1);
    NVWAL_CHECK_OK(file.readPage(3, ByteSpan(out.data(), 4096)));
    EXPECT_EQ(out, p3);
}

} // namespace
} // namespace nvwal
