/**
 * @file
 * Tests for the materialized-page LRU cache and latest-full-frame
 * shortcut (DESIGN.md §9): snapshot-pinned readers must see their
 * horizon rather than a newer cached image, new commits invalidate a
 * page's cached images, the cache restarts cold across recover(),
 * and the ordered checkpoint both drains pages in ascending order
 * and reuses images the read path just materialized.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/nvwal_log.hpp"
#include "db/connection.hpp"
#include "db/database.hpp"
#include "db/env.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;
constexpr std::uint32_t kReserved = 24;

class MaterializeCacheTest : public ::testing::Test
{
  protected:
    MaterializeCacheTest()
        : env(makeEnvConfig()), dbFile(env.fs, "t.db", kPageSize)
    {
        NVWAL_CHECK_OK(dbFile.open());
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::tuna(500);
        return c;
    }

    void
    openLog(std::uint32_t cache_entries)
    {
        config.materializeCacheEntries = cache_entries;
        log = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                         kPageSize, kReserved, config,
                                         env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log->recover(&db_size));
    }

    /** Commit one full-page frame (UH+LS+Diff defaults). */
    void
    commitFullPage(PageNo no, const ByteBuffer &page,
                   std::uint32_t db_size)
    {
        DirtyRanges full;
        full.mark(0, kPageSize);
        std::vector<FrameWrite> frames{
            FrameWrite{no, testutil::spanOf(page), &full}};
        NVWAL_CHECK_OK(log->writeFrames(frames, true, db_size));
    }

    /** Commit a small diff of @p page at byte 100. */
    void
    commitDiff(PageNo no, const ByteBuffer &page, std::uint32_t db_size)
    {
        DirtyRanges diff;
        diff.mark(100, 108);
        std::vector<FrameWrite> frames{
            FrameWrite{no, testutil::spanOf(page), &diff}};
        NVWAL_CHECK_OK(log->writeFrames(frames, true, db_size));
    }

    std::uint64_t
    hits() const
    {
        return env.stats.get(stats::kWalMaterializeCacheHits);
    }

    std::uint64_t
    misses() const
    {
        return env.stats.get(stats::kWalMaterializeCacheMisses);
    }

    Env env;
    DbFile dbFile;
    NvwalConfig config;
    std::unique_ptr<NvwalLog> log;
};

/** Second read of an unchanged page is served from the cache. */
TEST_F(MaterializeCacheTest, RepeatReadHitsCache)
{
    openLog(16);
    ByteBuffer page = testutil::makeValue(kPageSize, 7);
    commitFullPage(3, page, 3);

    ByteBuffer out(kPageSize);
    const auto h0 = hits(), m0 = misses();
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
    EXPECT_EQ(hits() - h0, 0u);
    EXPECT_EQ(misses() - m0, 1u);

    std::memset(out.data(), 0, out.size());
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
    EXPECT_EQ(hits() - h0, 1u);
    EXPECT_EQ(misses() - m0, 1u);
}

/**
 * A snapshot pinned before a later commit must materialize its own
 * horizon even when the cache holds the newer image: the cache key
 * is (page, effective commit seq), so the pinned read resolves to a
 * different entry, never the newer one.
 */
TEST_F(MaterializeCacheTest, PinnedSnapshotDoesNotSeeNewerCachedImage)
{
    openLog(16);
    ByteBuffer v1 = testutil::makeValue(kPageSize, 1);
    commitFullPage(3, v1, 3);
    const CommitSeq pinned = log->commitSeq();

    ByteBuffer v2 = v1;
    std::memset(v2.data() + 100, 0x99, 8);
    commitDiff(3, v2, 3);

    // Warm the cache with the newest image.
    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, v2);

    // The pinned reader must get v1, not the cached v2.
    NVWAL_CHECK_OK(
        log->readPageAt(3, ByteSpan(out.data(), out.size()), pinned));
    EXPECT_EQ(out, v1);

    // And an unpinned read still sees v2 (now from the cache).
    const auto h0 = hits();
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, v2);
    EXPECT_EQ(hits() - h0, 1u);
}

/** A new commit to a page invalidates its cached images. */
TEST_F(MaterializeCacheTest, CommitInvalidatesCachedImage)
{
    openLog(16);
    ByteBuffer v1 = testutil::makeValue(kPageSize, 1);
    commitFullPage(3, v1, 3);

    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));

    ByteBuffer v2 = v1;
    std::memset(v2.data() + 100, 0xAB, 8);
    commitDiff(3, v2, 3);

    // The read after the commit cannot be served by the stale entry.
    const auto h0 = hits(), m0 = misses();
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, v2);
    EXPECT_EQ(hits() - h0, 0u);
    EXPECT_EQ(misses() - m0, 1u);
}

/** The cache restarts cold across recover(); data stays correct. */
TEST_F(MaterializeCacheTest, CacheColdAfterRecover)
{
    openLog(16);
    ByteBuffer page = testutil::makeValue(kPageSize, 5);
    commitFullPage(3, page, 3);

    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));

    auto fresh = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                            kPageSize, kReserved, config,
                                            env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh->recover(&db_size));

    // First post-recovery read misses (no cached image survives) and
    // re-materializes the committed content from NVRAM.
    const auto h0 = hits(), m0 = misses();
    std::memset(out.data(), 0, out.size());
    NVWAL_CHECK_OK(fresh->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
    EXPECT_EQ(hits() - h0, 0u);
    EXPECT_EQ(misses() - m0, 1u);
}

/**
 * With the cache disabled the latest-full-frame shortcut still
 * avoids the base-page read + diff replay prefix: the backward scan
 * starts materialization at the newest full-page frame.
 */
TEST_F(MaterializeCacheTest, FullFrameShortcutWithCacheDisabled)
{
    openLog(0);
    ByteBuffer page = testutil::makeValue(kPageSize, 9);
    commitFullPage(3, page, 3);
    for (int i = 0; i < 4; ++i) {
        page[static_cast<std::size_t>(100 + i)] ^= 0xFF;
        commitDiff(3, page, 3);
    }

    ByteBuffer out(kPageSize);
    const auto s0 = env.stats.get(stats::kWalFullFrameShortcuts);
    const auto h0 = hits(), m0 = misses();
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
    EXPECT_EQ(env.stats.get(stats::kWalFullFrameShortcuts) - s0, 1u);
    // Cache disabled: neither hits nor misses are recorded.
    EXPECT_EQ(hits() - h0, 0u);
    EXPECT_EQ(misses() - m0, 0u);
}

/**
 * Checkpoint write-back reuses the image the read path just
 * materialized and drains pages in ascending page order regardless
 * of commit order.
 */
TEST_F(MaterializeCacheTest, CheckpointReusesCacheAndDrainsInOrder)
{
    openLog(16);
    // Commit in scattered page order.
    const PageNo pages[] = {9, 3, 7, 5};
    ByteBuffer images[4];
    std::uint32_t db_size = 0;
    for (int i = 0; i < 4; ++i) {
        images[i] = testutil::makeValue(kPageSize, pages[i]);
        db_size = std::max(db_size, pages[i]);
        commitFullPage(pages[i], images[i], db_size);
    }

    // Warm the cache the way a reader would.
    ByteBuffer out(kPageSize);
    for (int i = 0; i < 4; ++i) {
        NVWAL_CHECK_OK(
            log->readPage(pages[i], ByteSpan(out.data(), out.size())));
    }

    const auto h0 = hits();
    const auto w0 = env.stats.get(stats::kWalCkptPagesWritten);
    const auto seq0 = env.stats.get(stats::kWalCkptSequentialWrites);
    NVWAL_CHECK_OK(log->checkpoint());

    // Every written page was served from the materialized cache, and
    // the drain visited them in ascending page order: each write
    // after the first lands above its predecessor.
    const auto written = env.stats.get(stats::kWalCkptPagesWritten) - w0;
    EXPECT_EQ(written, 4u);
    EXPECT_EQ(hits() - h0, written);
    EXPECT_EQ(env.stats.get(stats::kWalCkptSequentialWrites) - seq0,
              written - 1);

    // The .db file holds the checkpointed images.
    for (int i = 0; i < 4; ++i) {
        NVWAL_CHECK_OK(
            dbFile.readPage(pages[i], ByteSpan(out.data(), out.size())));
        EXPECT_EQ(out, images[i]) << "page " << pages[i];
    }
}

/**
 * Database-level guard: a snapshot reader pinned before a concurrent
 * commit keeps seeing its horizon even after the newest page image
 * has been pulled into the materialized cache by other readers.
 */
TEST(MaterializeCacheDb, SnapshotReaderUnaffectedByWarmCache)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbConfig db_config;
    db_config.walMode = WalMode::Nvwal;
    db_config.autoCheckpoint = false;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, db_config, &db));

    const ByteBuffer v_old = testutil::makeValue(64, 1);
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(v_old)));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    NVWAL_CHECK_OK(conn->beginRead());

    const ByteBuffer v_new = testutil::makeValue(64, 2);
    NVWAL_CHECK_OK(db->update(1, testutil::spanOf(v_new)));

    // Populate the WAL's materialized cache with the newest image.
    ByteBuffer got;
    NVWAL_CHECK_OK(db->get(1, &got));
    EXPECT_EQ(got, v_new);

    // The pinned reader still sees the pre-update value.
    NVWAL_CHECK_OK(conn->get(1, &got));
    EXPECT_EQ(got, v_old);
    NVWAL_CHECK_OK(conn->endRead());

    // Released, a fresh read snapshot observes the update.
    NVWAL_CHECK_OK(conn->beginRead());
    NVWAL_CHECK_OK(conn->get(1, &got));
    EXPECT_EQ(got, v_new);
    NVWAL_CHECK_OK(conn->endRead());
}

/**
 * Satellite regression (over-broad truncation invalidation): after a
 * checkpoint truncates a page's frame chain, the cached image at the
 * page's checkpointed base sequence survives and serves as the
 * replay base for the next diff commit -- the read never touches the
 * .db file. Proven behaviorally: the .db copy is overwritten with
 * garbage after the checkpoint, and the materialized page is still
 * byte-correct.
 */
TEST_F(MaterializeCacheTest, TruncationKeepsBaseImageServingReads)
{
    openLog(16);
    ByteBuffer v1 = testutil::makeValue(kPageSize, 21);
    commitFullPage(3, v1, 3);                        // seq 1

    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, v1);                              // caches (3, 1)

    NVWAL_CHECK_OK(log->checkpoint());
    // The frame chain is gone; the WAL read contract is NotFound.
    EXPECT_TRUE(
        log->readPage(3, ByteSpan(out.data(), out.size())).isNotFound());

    // Corrupt the .db copy: if the next materialization fell back to
    // the file, the garbage would show through.
    const ByteBuffer garbage(kPageSize, 0xCC);
    NVWAL_CHECK_OK(dbFile.writePage(3, testutil::spanOf(garbage)));

    // New diff on top of the truncated chain. The surviving
    // (3, baseSeq) image -- not the corrupted file -- is the base.
    ByteBuffer v2 = v1;
    for (int i = 100; i < 108; ++i)
        v2[static_cast<std::size_t>(i)] ^= 0x5A;
    commitDiff(3, v2, 3);                            // seq 2

    const auto h0 = hits(), m0 = misses();
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, v2);
    EXPECT_EQ(misses() - m0, 1u);  // fresh materialization at seq 2

    // ...and the new image is cached: the repeat read hits.
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, v2);
    EXPECT_EQ(hits() - h0, 1u);
}

/**
 * Satellite regression (truncation invalidation is per page): a
 * cached image whose sequence is NOT the page's base is dropped at
 * truncation, while another page's base image in the same cache
 * survives -- invalidation walks pages, not the whole cache.
 */
TEST_F(MaterializeCacheTest, TruncationDropsOnlyNonBaseImages)
{
    openLog(16);
    ByteBuffer p3 = testutil::makeValue(kPageSize, 31);
    ByteBuffer p4 = testutil::makeValue(kPageSize, 32);
    commitFullPage(3, p3, 4);                        // seq 1
    commitFullPage(4, p4, 4);                        // seq 2

    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    NVWAL_CHECK_OK(log->readPage(4, ByteSpan(out.data(), out.size())));

    NVWAL_CHECK_OK(log->checkpoint());

    // Page 3's base image (seq 1) survived; page 4's too (seq 2).
    // A stale non-base image must be gone: page 3's state at seq 1
    // is its base, so nothing else was cached for it -- create a
    // staleness case instead via a post-checkpoint commit + read,
    // then a second checkpoint.
    ByteBuffer p3b = p3;
    p3b[100] ^= 0x77;
    commitDiff(3, p3b, 4);                           // seq 3
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p3b);                             // caches (3, 3)

    NVWAL_CHECK_OK(log->checkpoint());
    // (3, 1) was superseded as base by (3, 3) and must be dropped;
    // page 4 kept exactly its base. Both pages keep serving reads
    // through their bases after fresh commits, file reads unneeded:
    const ByteBuffer garbage(kPageSize, 0xDD);
    NVWAL_CHECK_OK(dbFile.writePage(3, testutil::spanOf(garbage)));
    NVWAL_CHECK_OK(dbFile.writePage(4, testutil::spanOf(garbage)));

    ByteBuffer p3c = p3b;
    p3c[100] ^= 0x11;
    commitDiff(3, p3c, 4);                           // seq 4
    ByteBuffer p4b = p4;
    p4b[100] ^= 0x22;
    commitDiff(4, p4b, 4);                           // seq 5
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p3c);
    NVWAL_CHECK_OK(log->readPage(4, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, p4b);
}

/**
 * Satellite regression (_pageIndex memory retention): a fully
 * checkpointed page releases its frame list and radix nodes. With
 * the image cache disabled nothing anchors the entry, so the whole
 * per-page state is reclaimed; with the cache enabled only the
 * frame-less stub survives. Either way the index footprint after a
 * checkpoint is bounded by the *retained* frames, not by history.
 */
TEST_F(MaterializeCacheTest, CheckpointReclaimsFrameIndexMemory)
{
    openLog(0);  // cache disabled: no base images, no stub entries
    for (int round = 0; round < 50; ++round) {
        ByteBuffer page = testutil::makeValue(kPageSize, 40 + round);
        commitFullPage(3 + (round % 4), page, 8);
    }
    EXPECT_GT(log->indexedFrames(), 0u);
    EXPECT_GT(log->frameIndexNodes(), 0u);

    NVWAL_CHECK_OK(log->checkpoint());
    EXPECT_EQ(log->indexedFrames(), 0u);
    EXPECT_EQ(log->frameIndexNodes(), 0u);
    EXPECT_EQ(env.stats.get(stats::kWalFrameIndexNodes), 0u);

    // Post-checkpoint commits rebuild only what the new frames need.
    ByteBuffer page = testutil::makeValue(kPageSize, 99);
    commitFullPage(3, page, 8);
    EXPECT_EQ(log->indexedFrames(), 1u);
    const std::uint64_t one_frame_nodes = log->frameIndexNodes();
    EXPECT_GT(one_frame_nodes, 0u);

    NVWAL_CHECK_OK(log->checkpoint());
    EXPECT_EQ(log->frameIndexNodes(), 0u);
}

} // namespace
} // namespace nvwal
