/**
 * @file
 * Unit tests for dirty byte-range tracking (differential logging's
 * foundation, paper section 3.2).
 */

#include <gtest/gtest.h>

#include "pager/dirty_ranges.hpp"

namespace nvwal
{
namespace
{

TEST(DirtyRanges, StartsEmpty)
{
    DirtyRanges d;
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.totalBytes(), 0u);
    EXPECT_TRUE(d.bounding().empty());
}

TEST(DirtyRanges, SingleMark)
{
    DirtyRanges d;
    d.mark(100, 200);
    ASSERT_EQ(d.ranges().size(), 1u);
    EXPECT_EQ(d.ranges()[0].lo, 100u);
    EXPECT_EQ(d.ranges()[0].hi, 200u);
    EXPECT_EQ(d.totalBytes(), 100u);
}

TEST(DirtyRanges, EmptyMarkIgnored)
{
    DirtyRanges d;
    d.mark(50, 50);
    d.mark(60, 40);
    EXPECT_TRUE(d.empty());
}

TEST(DirtyRanges, OverlappingMarksMerge)
{
    DirtyRanges d;
    d.mark(100, 200);
    d.mark(150, 300);
    ASSERT_EQ(d.ranges().size(), 1u);
    EXPECT_EQ(d.ranges()[0].lo, 100u);
    EXPECT_EQ(d.ranges()[0].hi, 300u);
}

TEST(DirtyRanges, NearbyMarksMergeWithinGap)
{
    DirtyRanges d(/*merge_gap=*/32);
    d.mark(0, 10);
    d.mark(30, 40);  // gap of 20 <= 32: merged
    ASSERT_EQ(d.ranges().size(), 1u);
    EXPECT_EQ(d.ranges()[0].hi, 40u);
}

TEST(DirtyRanges, DistantMarksStaySeparate)
{
    DirtyRanges d(/*merge_gap=*/32);
    d.mark(0, 10);
    d.mark(100, 110);
    ASSERT_EQ(d.ranges().size(), 2u);
    EXPECT_EQ(d.totalBytes(), 20u);
    EXPECT_EQ(d.bounding().lo, 0u);
    EXPECT_EQ(d.bounding().hi, 110u);
}

TEST(DirtyRanges, RangesStaySortedAndDisjoint)
{
    DirtyRanges d(0, 16);
    d.mark(500, 510);
    d.mark(100, 110);
    d.mark(300, 310);
    d.mark(105, 305);  // swallows the middle
    const auto &rs = d.ranges();
    for (std::size_t i = 0; i + 1 < rs.size(); ++i) {
        EXPECT_LT(rs[i].hi, rs[i + 1].lo);
    }
    EXPECT_EQ(rs.size(), 2u);
    EXPECT_EQ(rs[0].lo, 100u);
    EXPECT_EQ(rs[0].hi, 310u);
}

TEST(DirtyRanges, CapMergesClosestPair)
{
    DirtyRanges d(/*merge_gap=*/0, /*max_ranges=*/2);
    d.mark(0, 10);
    d.mark(100, 110);
    d.mark(112, 120);  // closest to the second range
    ASSERT_EQ(d.ranges().size(), 2u);
    EXPECT_EQ(d.ranges()[0].lo, 0u);
    EXPECT_EQ(d.ranges()[0].hi, 10u);
    EXPECT_EQ(d.ranges()[1].lo, 100u);
    EXPECT_EQ(d.ranges()[1].hi, 120u);
}

TEST(DirtyRanges, InsertWorkloadShape)
{
    // The classic B-tree insert pattern: header + pointer slot near
    // the top, cell content near the bottom. Two ranges, not one
    // page-sized range.
    DirtyRanges d;
    d.mark(2, 6);       // header fields
    d.mark(12, 14);     // pointer slot
    d.mark(3986, 4096); // appended cell
    ASSERT_EQ(d.ranges().size(), 2u);
    EXPECT_LT(d.totalBytes(), 200u);
}

TEST(DirtyRanges, ClearResets)
{
    DirtyRanges d;
    d.mark(0, 100);
    d.clear();
    EXPECT_TRUE(d.empty());
    d.mark(5, 10);
    EXPECT_EQ(d.totalBytes(), 5u);
}

} // namespace
} // namespace nvwal
