/**
 * @file
 * Crash-consistency tests: power failures injected at every
 * persistence-relevant operation of a committing transaction, under
 * both the pessimistic and the adversarial survival policy, plus the
 * specific failure cases enumerated in section 4.3 of the paper.
 *
 * The invariants checked after every injected crash:
 *  - atomicity: the victim transaction is either fully present or
 *    fully absent;
 *  - durability (Lazy/Eager): every transaction that committed
 *    before the victim is present;
 *  - prefix consistency (ChecksumAsync): the recovered state is a
 *    prefix of the committed transaction sequence (section 4.2's
 *    weaker guarantee);
 *  - structural integrity: the B-tree validates;
 *  - no NVRAM leaks: the heap has no pending blocks after recovery.
 */

#include <gtest/gtest.h>

#include <map>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

struct CrashParam
{
    SyncMode sync;
    bool diff;
    bool userHeap;
    FailurePolicy policy;
    const char *label;
};

DbConfig
dbConfigFor(const CrashParam &p)
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.nvwal.syncMode = p.sync;
    config.nvwal.diffLogging = p.diff;
    config.nvwal.userHeap = p.userHeap;
    // Small NVRAM blocks exercise the block-boundary paths often.
    config.nvwal.nvBlockSize = 4096;
    return config;
}

/** Value written by transaction @p txn for key @p key. */
ByteBuffer
valueFor(int txn, RowId key)
{
    return testutil::makeValue(80,
                               static_cast<std::uint64_t>(txn) * 1000 +
                                   static_cast<std::uint64_t>(key));
}

/** Apply transaction @p txn to @p db (3 inserts + 1 update). */
Status
applyTxn(Database &db, int txn, std::map<RowId, ByteBuffer> *oracle)
{
    NVWAL_RETURN_IF_ERROR(db.begin());
    std::map<RowId, ByteBuffer> delta;
    for (int i = 0; i < 3; ++i) {
        const RowId key = txn * 10 + i;
        const ByteBuffer v = valueFor(txn, key);
        NVWAL_RETURN_IF_ERROR(db.insert(key, testutil::spanOf(v)));
        delta[key] = v;
    }
    if (txn > 0) {
        const RowId prev = (txn - 1) * 10;
        const ByteBuffer v = valueFor(txn, prev);
        NVWAL_RETURN_IF_ERROR(db.update(prev, testutil::spanOf(v)));
        delta[prev] = v;
    }
    NVWAL_RETURN_IF_ERROR(db.commit());
    if (oracle != nullptr) {
        for (auto &[k, v] : delta)
            (*oracle)[k] = v;
    }
    return Status::ok();
}

std::map<RowId, ByteBuffer>
dumpDb(Database &db)
{
    std::map<RowId, ByteBuffer> content;
    NVWAL_CHECK_OK(db.scan(INT64_MIN, INT64_MAX,
                           [&](RowId k, ConstByteSpan v) {
                               content[k] = ByteBuffer(v.begin(), v.end());
                               return true;
                           }));
    return content;
}

class CrashSweep : public ::testing::TestWithParam<CrashParam>
{
};

TEST_P(CrashSweep, EveryInjectionPointRecoversConsistently)
{
    const CrashParam param = GetParam();

    // Harness-driven sweep: two checkpointed warm-up transactions,
    // then three swept transactions with a failure injected at evenly
    // sampled device ops. The harness checks durability/atomicity
    // (or prefix consistency for ChecksumAsync), B-tree integrity,
    // NVRAM leak freedom and post-recovery liveness at every point.
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.seed = 0xc0ffee;
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db = dbConfigFor(param);
    config.warmup = faultsim::Workload::standardTxns(0, 2);
    config.workload = faultsim::Workload::standardTxns(2, 3);
    faultsim::PolicyRun run;
    run.policy = param.policy;
    if (param.policy == FailurePolicy::Adversarial)
        run.seeds = {1, 2};
    config.policies.push_back(run);
    config.maxPoints = 60;   // evenly sampled; CI-affordable

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << param.label << "\n" << report.summary();
    EXPECT_EQ(report.crashes, report.replays);
    // ChecksumAsync transactions issue very few NVRAM operations
    // (that is their whole point), so fewer injection points exist.
    EXPECT_GE(report.pointsSwept,
              param.sync == SyncMode::ChecksumAsync ? 5u : 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CrashSweep,
    ::testing::Values(
        CrashParam{SyncMode::Lazy, true, true, FailurePolicy::Pessimistic,
                   "UH_LS_Diff_pess"},
        CrashParam{SyncMode::Lazy, true, true, FailurePolicy::Adversarial,
                   "UH_LS_Diff_adv"},
        CrashParam{SyncMode::Lazy, false, false,
                   FailurePolicy::Pessimistic, "LS_pess"},
        CrashParam{SyncMode::Lazy, false, false,
                   FailurePolicy::Adversarial, "LS_adv"},
        CrashParam{SyncMode::Eager, true, true,
                   FailurePolicy::Pessimistic, "UH_E_Diff_pess"},
        CrashParam{SyncMode::Eager, true, true,
                   FailurePolicy::Adversarial, "UH_E_Diff_adv"},
        CrashParam{SyncMode::ChecksumAsync, true, true,
                   FailurePolicy::Pessimistic, "UH_CS_Diff_pess"},
        CrashParam{SyncMode::ChecksumAsync, true, true,
                   FailurePolicy::Adversarial, "UH_CS_Diff_adv"}),
    [](const auto &info) { return std::string(info.param.label); });

/** Crash injection across a checkpoint (section 4.3, last case). */
TEST(CrashCheckpoint, CrashDuringCheckpointIsRecoverable)
{
    // Four warm transactions stay in the log (checkpointAfterWarmup
    // off); the swept workload is the checkpoint itself, so every
    // injection point lands inside write-back + truncation and the
    // recovered state must equal the warm state exactly.
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.db.walMode = WalMode::Nvwal;
    config.db.autoCheckpoint = false;
    config.warmup = faultsim::Workload::standardTxns(0, 4);
    config.checkpointAfterWarmup = false;
    config.workload.phase("checkpoint").checkpoint();
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2}, 0.5});
    config.maxPoints = 50;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.commitEvents, 0u);
    EXPECT_GT(report.crashes, 10u);
}

/**
 * Section 4.3 failure case: crash right after nv_pre_malloc() leaves
 * a pending block that recovery reclaims (no leak).
 */
TEST(CrashCases, PendingBlockReclaimedAfterCrash)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, "seed"));

    // Allocate a pending block directly (as if the crash hit between
    // allocation and linking) and drop power.
    NvOffset orphan;
    NVWAL_CHECK_OK(env.heap.nvPreMalloc(8192, &orphan));
    env.powerFail(FailurePolicy::Pessimistic);

    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    EXPECT_EQ(env.heap.countBlocks(BlockState::Pending), 0u);
    EXPECT_EQ(env.heap.blockStateAt(orphan), BlockState::Free);
    ByteBuffer out;
    NVWAL_CHECK_OK(recovered->get(1, &out));
}

/** Repeated crash/recover cycles must not leak NVRAM blocks. */
TEST(CrashCases, NoNvramLeakAcrossManyCrashCycles)
{
    EnvConfig env_config;
    env_config.cost = CostModel::tuna(500);
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.checkpointThreshold = 30;

    std::uint64_t in_use_high_water = 0;
    Rng rng(4242);
    for (int cycle = 0; cycle < 25; ++cycle) {
        std::unique_ptr<Database> db;
        NVWAL_CHECK_OK(Database::open(env, config, &db));
        env.nvramDevice.setScheduledCrashPolicy(
            FailurePolicy::Adversarial, 0.5);
        env.nvramDevice.scheduleCrashAtOp(50 + rng.nextBelow(400));
        try {
            // Insert-only transactions: an earlier crash may have
            // rolled back any previous cycle's keys, so the workload
            // must not depend on them existing. Key ranges never
            // collide across cycles.
            for (int txn = 0; txn < 20; ++txn) {
                NVWAL_CHECK_OK(db->begin());
                for (int i = 0; i < 3; ++i) {
                    const RowId key = (cycle * 100 + txn) * 10 + i;
                    const ByteBuffer v = valueFor(txn, key);
                    NVWAL_CHECK_OK(
                        db->insert(key, testutil::spanOf(v)));
                }
                NVWAL_CHECK_OK(db->commit());
            }
            env.nvramDevice.scheduleCrashAtOp(0);
        } catch (const PowerFailure &) {
            env.fs.crash();
        }
        db.reset();
        std::unique_ptr<Database> recovered;
        NVWAL_CHECK_OK(Database::open(env, config, &recovered));
        NVWAL_CHECK_OK(recovered->verifyIntegrity());
        NVWAL_CHECK_OK(recovered->checkpoint());
        // After a checkpoint the log is empty: in-use blocks must be
        // back to the steady-state footprint (header only).
        const std::uint64_t in_use =
            env.heap.countBlocks(BlockState::InUse);
        if (cycle == 0)
            in_use_high_water = in_use;
        EXPECT_LE(in_use, in_use_high_water) << "cycle " << cycle;
        EXPECT_EQ(env.heap.countBlocks(BlockState::Pending), 0u);
    }
}

/**
 * File-based WAL crash: unsynced commits are lost, synced commits
 * survive -- the classic fsync contract the flash baseline provides.
 */
TEST(CrashCases, FileWalSurvivesFsCrash)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::FileOptimized;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::map<RowId, ByteBuffer> oracle;
    for (int txn = 0; txn < 5; ++txn)
        NVWAL_CHECK_OK(applyTxn(*db, txn, &oracle));
    env.fs.crash();

    db.reset();
    std::unique_ptr<Database> recovered;
    NVWAL_CHECK_OK(Database::open(env, config, &recovered));
    NVWAL_CHECK_OK(recovered->verifyIntegrity());
    EXPECT_EQ(dumpDb(*recovered), oracle);
}

} // namespace
} // namespace nvwal
