/**
 * @file
 * Tests for the concurrent-connection surface: snapshot-isolated
 * readers, the group-commit queue under real writer threads, the
 * background checkpointer, and the crash-sweep harness replaying a
 * scripted reader + incremental checkpointer alongside committing
 * transactions.
 *
 * Threaded tests only assert properties that hold under every legal
 * interleaving (snapshot stability, prefix visibility, conservation
 * of committed transactions); scheduling-dependent quantities like
 * the exact batch sizes are checked loosely.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "db/connection.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

DbConfig
nvwalConfig()
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    return config;
}

EnvConfig
envConfig()
{
    EnvConfig c;
    c.cost = CostModel::nexus5();
    return c;
}

ByteBuffer
rowValue(RowId key)
{
    return testutil::makeValue(64, static_cast<std::uint64_t>(key));
}

// ---- single-threaded snapshot semantics ----------------------------

TEST(Concurrency, SnapshotIsolationAcrossCommits)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, nvwalConfig(), &db));
    for (RowId k = 1; k <= 10; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    EXPECT_EQ(db->statGauge(stats::kGaugeOpenConnections), 1u);
    NVWAL_CHECK_OK(conn->beginRead());
    EXPECT_TRUE(conn->inRead());
    EXPECT_EQ(db->statGauge(stats::kGaugeOpenSnapshots), 1u);

    // Commits after the pin are invisible to the open snapshot.
    for (RowId k = 11; k <= 20; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));
    NVWAL_CHECK_OK(db->update(1, testutil::spanOf(rowValue(99))));

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(conn->count(&n));
    EXPECT_EQ(n, 10u);
    ByteBuffer out;
    NVWAL_CHECK_OK(conn->get(1, &out));
    EXPECT_EQ(out, rowValue(1));   // pre-update value
    EXPECT_TRUE(conn->get(15, &out).isNotFound());
    EXPECT_GT(conn->snapshotFetches(), 0u);

    // A fresh snapshot sees the new horizon.
    NVWAL_CHECK_OK(conn->endRead());
    EXPECT_EQ(db->statGauge(stats::kGaugeOpenSnapshots), 0u);
    NVWAL_CHECK_OK(conn->beginRead());
    NVWAL_CHECK_OK(conn->count(&n));
    EXPECT_EQ(n, 20u);
    NVWAL_CHECK_OK(conn->get(1, &out));
    EXPECT_EQ(out, rowValue(99));
    NVWAL_CHECK_OK(conn->endRead());

    EXPECT_GE(db->statValue(stats::kSnapshotsOpened), 2u);
    conn.reset();
    EXPECT_EQ(db->statGauge(stats::kGaugeOpenConnections), 0u);
}

TEST(Concurrency, PinnedSnapshotBlocksTruncationThenDrains)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    DbConfig config = nvwalConfig();
    config.autoCheckpoint = false;   // checkpoint only by hand here
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 10; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    NVWAL_CHECK_OK(conn->beginRead());
    for (RowId k = 11; k <= 20; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    // Drain as far as the pin allows: the step loop must terminate
    // (done despite the pin), report the block, and keep the frames
    // the snapshot needs.
    bool done = false;
    for (int round = 0; round < 100 && !done; ++round)
        NVWAL_CHECK_OK(db->checkpointStep(0, &done));
    EXPECT_TRUE(done);
    EXPECT_GE(db->statValue(stats::kCheckpointsPinBlocked), 1u);
    EXPECT_GT(db->walFramesSinceCheckpoint(), 0u);

    // The snapshot still reads exactly its pinned state.
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(conn->count(&n));
    EXPECT_EQ(n, 10u);
    ByteBuffer out;
    EXPECT_TRUE(conn->get(15, &out).isNotFound());

    // Vacuum must refuse while the pin is open.
    EXPECT_TRUE(db->vacuum().isBusy());

    // Unpin: the log drains completely and the new state is visible.
    NVWAL_CHECK_OK(conn->endRead());
    done = false;
    for (int round = 0; round < 100 && !done; ++round)
        NVWAL_CHECK_OK(db->checkpointStep(0, &done));
    EXPECT_TRUE(done);
    EXPECT_EQ(db->walFramesSinceCheckpoint(), 0u);
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 20u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST(Concurrency, WriteTransactionThroughConnection)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, nvwalConfig(), &db));
    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));

    NVWAL_CHECK_OK(conn->begin());
    EXPECT_TRUE(conn->inWrite());
    NVWAL_CHECK_OK(conn->insert(1, "one"));
    NVWAL_CHECK_OK(conn->insert(2, "two"));
    NVWAL_CHECK_OK(conn->commit());
    EXPECT_FALSE(conn->inWrite());

    NVWAL_CHECK_OK(conn->begin());
    NVWAL_CHECK_OK(conn->insert(3, "three"));
    NVWAL_CHECK_OK(conn->rollback());

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 2u);
    ByteBuffer out;
    EXPECT_TRUE(db->get(3, &out).isNotFound());
}

// ---- threaded: snapshot readers vs a committing writer -------------

TEST(Concurrency, ReadersSeeCommittedPrefixesWhileWriterCommits)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, nvwalConfig(), &db));

    constexpr RowId kTxns = 40;
    constexpr int kReaders = 4;
    std::atomic<bool> writer_done{false};
    std::atomic<int> failures{0};

    // Commit the first transaction before any reader pins a
    // snapshot, so every snapshot has a committed horizon.
    std::unique_ptr<Connection> writer;
    ConnectOptions auto_txn;
    auto_txn.autoWriteTxn = true;
    NVWAL_CHECK_OK(db->connect(auto_txn, &writer));
    NVWAL_CHECK_OK(writer->insert(1, testutil::spanOf(rowValue(1))));

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&] {
            std::unique_ptr<Connection> conn;
            if (!db->connect(&conn).isOk()) {
                failures++;
                return;
            }
            std::uint64_t last_count = 0;
            do {
                if (!conn->beginRead().isOk()) {
                    failures++;
                    return;
                }
                std::uint64_t n = 0;
                bool consistent = true;
                // Writer commits key t at txn t, so every consistent
                // snapshot is exactly the keys 1..n for some n, each
                // with its per-key value.
                if (!conn->count(&n).isOk())
                    consistent = false;
                RowId max_seen = 0;
                if (consistent &&
                    !conn->scan(INT64_MIN, INT64_MAX,
                                [&](RowId k, ConstByteSpan v) {
                                    if (k != max_seen + 1 ||
                                        ByteBuffer(v.begin(), v.end()) !=
                                            rowValue(k))
                                        consistent = false;
                                    max_seen = k;
                                    return consistent;
                                }).isOk())
                    consistent = false;
                if (consistent && max_seen != static_cast<RowId>(n))
                    consistent = false;
                if (consistent && n < last_count)
                    consistent = false;   // horizons are monotonic
                last_count = n;
                // Re-reading the same snapshot is stable.
                std::uint64_t again = 0;
                if (consistent &&
                    (!conn->count(&again).isOk() || again != n))
                    consistent = false;
                if (!conn->endRead().isOk())
                    consistent = false;
                if (!consistent) {
                    failures++;
                    return;
                }
            } while (!writer_done.load());
        });
    }

    for (RowId t = 2; t <= kTxns; ++t)
        NVWAL_CHECK_OK(writer->insert(t, testutil::spanOf(rowValue(t))));
    writer_done.store(true);
    for (auto &r : readers)
        r.join();
    writer.reset();

    EXPECT_EQ(failures.load(), 0);
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, static_cast<std::uint64_t>(kTxns));
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

// ---- threaded: group commit ----------------------------------------

TEST(Concurrency, GroupCommitBatchesConcurrentWriters)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, nvwalConfig(), &db));

    constexpr int kWriters = 4;
    // Batching needs writers whose transactions actually overlap in
    // time, which pure scheduling can deny on a single-core host: a
    // thread whose whole loop fits in one quantum runs to completion
    // before the next writer starts. Keep each loop well past a
    // timeslice so preemption lands mid-transaction, and hammer in
    // rounds until at least one batch combines; zero combining across
    // every round is the actual regression being tested for.
    constexpr int kTxnsPerWriter = 1000;
    constexpr int kMaxRounds = 5;
    std::atomic<int> failures{0};

    const std::uint64_t txns_before = db->statValue(stats::kTxnsCommitted);
    const std::uint64_t groups_before =
        db->statValue(stats::kGroupCommits);
    const std::uint64_t grouped_before =
        db->statValue(stats::kGroupCommitTxns);

    std::uint64_t total = 0;
    bool combined = false;
    for (int round = 0; round < kMaxRounds && !combined; ++round) {
        const std::uint64_t groups_at = db->statValue(stats::kGroupCommits);
        std::vector<std::thread> writers;
        writers.reserve(kWriters);
        for (int w = 0; w < kWriters; ++w) {
            writers.emplace_back([&, w, round] {
                std::unique_ptr<Connection> conn;
                ConnectOptions auto_txn;
                auto_txn.autoWriteTxn = true;
                if (!db->connect(auto_txn, &conn).isOk()) {
                    failures++;
                    return;
                }
                for (int i = 0; i < kTxnsPerWriter; ++i) {
                    const RowId key =
                        static_cast<RowId>(round) * 1000000 +
                        static_cast<RowId>(w) * 1000 + i;
                    if (!conn->insert(key, testutil::spanOf(rowValue(key)))
                             .isOk()) {
                        failures++;
                        return;
                    }
                }
            });
        }
        for (auto &t : writers)
            t.join();
        ASSERT_EQ(failures.load(), 0);
        total += kWriters * kTxnsPerWriter;
        combined = db->statValue(stats::kGroupCommits) - groups_at <
                   static_cast<std::uint64_t>(kWriters) * kTxnsPerWriter;
    }
    EXPECT_TRUE(combined)
        << "no batch ever combined more than one transaction";

    EXPECT_EQ(db->statValue(stats::kTxnsCommitted) - txns_before, total);
    // Every transaction went through the queue exactly once...
    EXPECT_EQ(db->statValue(stats::kGroupCommitTxns) - grouped_before,
              total);
    const std::uint64_t groups =
        db->statValue(stats::kGroupCommits) - groups_before;
    EXPECT_GE(groups, 1u);
    // ...and at least one group held several.
    EXPECT_LT(groups, total);

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, total);
    for (int w = 0; w < kWriters; ++w) {
        ByteBuffer out;
        const RowId key = static_cast<RowId>(w) * 1000 + kTxnsPerWriter - 1;
        NVWAL_CHECK_OK(db->get(key, &out));
        EXPECT_EQ(out, rowValue(key));
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

// ---- threaded: background checkpointer -----------------------------

TEST(Concurrency, BackgroundCheckpointerDrainsWhileCommitting)
{
    Env env(envConfig());
    DbConfig config = nvwalConfig();
    config.backgroundCheckpointer = true;
    config.checkpointThreshold = 8;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    for (RowId k = 1; k <= 60; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    // The checkpointer drains asynchronously; wait for it to catch
    // up (a full drain after the last kick ends at zero frames, but
    // the last few commits may land below the kick threshold).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (db->walFramesSinceCheckpoint() >= config.checkpointThreshold &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    EXPECT_LT(db->walFramesSinceCheckpoint(), config.checkpointThreshold);
    EXPECT_GT(db->statValue(stats::kCheckpointerSteps), 0u);
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 60u);
    NVWAL_CHECK_OK(db->verifyIntegrity());

    // Reopen: everything committed survives the restart.
    db.reset();
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 60u);
}

TEST(Concurrency, CheckpointerRespectsSnapshotPin)
{
    Env env(envConfig());
    DbConfig config = nvwalConfig();
    config.backgroundCheckpointer = true;
    config.checkpointThreshold = 4;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 5; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    NVWAL_CHECK_OK(conn->beginRead());

    // Push the checkpointer well past its threshold with the pin
    // held: it may write back up to the pin but never truncate past
    // it, so the snapshot stays intact however long this runs.
    for (RowId k = 6; k <= 40; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(conn->count(&n));
    EXPECT_EQ(n, 5u);
    ByteBuffer out;
    EXPECT_TRUE(conn->get(6, &out).isNotFound());
    NVWAL_CHECK_OK(conn->endRead());
    conn.reset();

    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 40u);
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

// ---- crash sweep with a scripted reader + checkpointer -------------

/**
 * The deterministic stand-in for "crash while readers and the
 * checkpointer are active": the sweep replays a scripted snapshot
 * reader (open early, verify after every commit and checkpoint step,
 * close late) interleaved with incremental checkpoint steps, and
 * must recover to exactly the same committed states as the plain
 * transaction-only sweep of the same transactions.
 */
TEST(Concurrency, CrashSweepWithReaderAndCheckpointerMatchesPlain)
{
    faultsim::SweepConfig plain;
    plain.env.cost = CostModel::tuna(500);
    plain.env.nvramBytes = 8 << 20;
    plain.env.flashBlocks = 2048;
    plain.db.walMode = WalMode::Nvwal;
    plain.db.nvwal.nvBlockSize = 4096;
    plain.db.autoCheckpoint = false;
    plain.warmup = faultsim::Workload::standardTxns(0, 1);
    plain.workload = faultsim::Workload::standardTxns(1, 3);
    plain.policies.push_back(faultsim::PolicyRun{});  // pessimistic

    faultsim::SweepReport plain_report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(plain).run(&plain_report));
    EXPECT_TRUE(plain_report.ok()) << plain_report.summary();

    // Same transactions, now with a pinned reader and checkpoint
    // steps woven between them.
    faultsim::SweepConfig busy = plain;
    faultsim::Workload w;
    w.phase("reader pin");
    w.snapshotOpen();
    for (int txn = 1; txn <= 3; ++txn) {
        w.phase("txn " + std::to_string(txn));
        w.begin();
        for (int i = 0; i < 3; ++i) {
            const RowId key = txn * 10 + i;
            w.insert(key, faultsim::Workload::valueFor(
                              80, static_cast<std::uint64_t>(txn) * 1000 +
                                      static_cast<std::uint64_t>(key)));
        }
        if (txn > 1) {
            const RowId prev = (txn - 1) * 10;
            w.update(prev, faultsim::Workload::valueFor(
                               80, static_cast<std::uint64_t>(txn) * 1000 +
                                       static_cast<std::uint64_t>(prev)));
        }
        w.commit();
        w.phase("reader+ckpt " + std::to_string(txn));
        w.snapshotVerify();
        w.checkpointStep();
        w.snapshotVerify();
    }
    w.phase("reader close");
    w.snapshotClose();
    w.checkpointStep();
    busy.workload = w;

    faultsim::SweepReport busy_report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(busy).run(&busy_report));
    EXPECT_TRUE(busy_report.ok()) << busy_report.summary();

    // "Recovers identically": the reader and the checkpoint steps add
    // device ops but no durable states, so both sweeps see the same
    // commit-event sequence and both recover every crash point to a
    // legal member of it.
    EXPECT_EQ(busy_report.commitEvents, plain_report.commitEvents);
    EXPECT_GT(busy_report.totalOps, plain_report.totalOps);
    EXPECT_EQ(busy_report.pointsSwept, busy_report.totalOps);
    EXPECT_EQ(busy_report.crashes, busy_report.replays);
}

} // namespace
} // namespace nvwal
