/**
 * @file
 * Tests for the multi-writer engine (DESIGN.md §13) and the §13
 * Connection API: CommitOptions, ConnectOptions::autoWriteTxn,
 * ValueView statements, transact() retry loops, optimistic conflict
 * detection across per-connection NVRAM logs, the cached casual
 * snapshot, epoch-ordered recovery merges, and the multi-writer
 * crash-point sweeps (pessimistic and adversarial).
 *
 * Threaded tests only assert interleaving-independent properties:
 * conservation of committed transactions, zero conflicts for
 * page-disjoint writers, and eventual success under bounded retry
 * for overlapping ones.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "db/connection.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

DbConfig
mwConfig(std::uint32_t writer_logs = 4)
{
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.multiWriter = true;
    config.writerLogs = writer_logs;
    return config;
}

EnvConfig
envConfig()
{
    EnvConfig c;
    c.cost = CostModel::nexus5();
    return c;
}

ByteBuffer
rowValue(RowId key, std::uint64_t tag = 0)
{
    return testutil::makeValue(
        64, static_cast<std::uint64_t>(key) * 31 + tag);
}

// ---- §13 API surface (mode-independent) ----------------------------

TEST(MultiwriterApi, CommitOptionsAndDeprecatedOverload)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));

    // The defaulted CommitOptions form is the plain durable commit.
    NVWAL_CHECK_OK(conn->begin());
    NVWAL_CHECK_OK(conn->insert(1, testutil::spanOf(rowValue(1))));
    NVWAL_CHECK_OK(conn->commit());

    // Named-knob form: an Async commit that still waits to harden.
    CommitOptions wait_async;
    wait_async.durability = Durability::Async;
    wait_async.waitForHarden = true;
    NVWAL_CHECK_OK(conn->begin());
    NVWAL_CHECK_OK(conn->insert(2, testutil::spanOf(rowValue(2))));
    NVWAL_CHECK_OK(conn->commit(wait_async));
    EXPECT_EQ(db->asyncAcksPending(), 0u);

    // The deprecated positional overload keeps the pre-§13 calling
    // convention: Async returns before the harden.
    NVWAL_CHECK_OK(conn->begin());
    NVWAL_CHECK_OK(conn->insert(3, testutil::spanOf(rowValue(3))));
    NVWAL_CHECK_OK(conn->commit(Durability::Async));
    EXPECT_GT(conn->lastCommitEpoch(), 0u);
    NVWAL_CHECK_OK(db->flushAsyncCommits());

    for (RowId k = 1; k <= 3; ++k) {
        ByteBuffer out;
        NVWAL_CHECK_OK(db->get(k, &out));
        EXPECT_EQ(out, rowValue(k));
    }
}

TEST(MultiwriterApi, WriteStatementsOutsideTxnRequireOptIn)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(rowValue(1))));

    // Default connection: a write statement without begin() is an
    // error instead of a silent one-statement transaction.
    std::unique_ptr<Connection> strict;
    NVWAL_CHECK_OK(db->connect(&strict));
    EXPECT_EQ(strict->insert(2, testutil::spanOf(rowValue(2)))
                  .code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(strict->update(1, testutil::spanOf(rowValue(1, 9))).code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(strict->remove(1).code(), StatusCode::InvalidArgument);
    // Reads never need a transaction.
    ByteBuffer out;
    NVWAL_CHECK_OK(strict->get(1, &out));
    EXPECT_EQ(out, rowValue(1));

    // Opt-in restores statement autocommit.
    ConnectOptions auto_txn;
    auto_txn.autoWriteTxn = true;
    std::unique_ptr<Connection> casual;
    NVWAL_CHECK_OK(db->connect(auto_txn, &casual));
    NVWAL_CHECK_OK(casual->insert(2, testutil::spanOf(rowValue(2))));
    EXPECT_FALSE(casual->inWrite());
    NVWAL_CHECK_OK(db->get(2, &out));
    EXPECT_EQ(out, rowValue(2));
}

TEST(MultiwriterApi, ValueViewUnifiesStringAndSpanStatements)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    const ByteBuffer buf = rowValue(4);
    const std::string str = "owned string value";
    NVWAL_CHECK_OK(conn->begin());
    NVWAL_CHECK_OK(conn->insert(1, "string literal"));
    NVWAL_CHECK_OK(conn->insert(2, str));
    NVWAL_CHECK_OK(conn->insert(3, testutil::spanOf(buf)));
    NVWAL_CHECK_OK(conn->insert(4, buf));
    NVWAL_CHECK_OK(conn->commit());

    ByteBuffer out;
    const std::string literal = "string literal";
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, ByteBuffer(literal.begin(), literal.end()));
    NVWAL_CHECK_OK(db->get(2, &out));
    EXPECT_EQ(out, ByteBuffer(str.begin(), str.end()));
    NVWAL_CHECK_OK(db->get(3, &out));
    EXPECT_EQ(out, buf);
    NVWAL_CHECK_OK(db->get(4, &out));
    EXPECT_EQ(out, buf);
}

TEST(MultiwriterApi, CasualReadsReuseSnapshotUntilHorizonMoves)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    for (RowId k = 1; k <= 20; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    std::unique_ptr<Connection> conn;
    NVWAL_CHECK_OK(db->connect(&conn));
    const std::uint64_t s0 = db->statValue(stats::kSnapshotsOpened);

    // A hot read loop outside beginRead() builds the casual snapshot
    // once, not once per statement.
    ByteBuffer out;
    std::uint64_t n = 0;
    for (int round = 0; round < 10; ++round) {
        NVWAL_CHECK_OK(conn->get(1 + round, &out));
        EXPECT_EQ(out, rowValue(1 + round));
        NVWAL_CHECK_OK(conn->count(&n));
        EXPECT_EQ(n, 20u);
    }
    const std::uint64_t s1 = db->statValue(stats::kSnapshotsOpened);
    EXPECT_EQ(s1, s0 + 1);

    // A commit moves the horizon: exactly one rebuild, and the new
    // row is visible (casual reads are never stale).
    NVWAL_CHECK_OK(db->insert(21, testutil::spanOf(rowValue(21))));
    for (int round = 0; round < 5; ++round) {
        NVWAL_CHECK_OK(conn->get(21, &out));
        EXPECT_EQ(out, rowValue(21));
    }
    EXPECT_EQ(db->statValue(stats::kSnapshotsOpened), s1 + 1);
}

// ---- multi-writer engine -------------------------------------------

TEST(Multiwriter, CommitsAcrossConnectionsAndGuardsDdl)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, mwConfig(4), &db));
    EXPECT_TRUE(db->multiWriterActive());

    // The direct statement API runs through the internal root
    // connection (autocommit epochs).
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(rowValue(1))));

    std::unique_ptr<Connection> a;
    std::unique_ptr<Connection> b;
    NVWAL_CHECK_OK(db->connect(&a));
    NVWAL_CHECK_OK(db->connect(&b));
    EXPECT_NE(a->slot(), b->slot());

    NVWAL_CHECK_OK(a->begin());
    NVWAL_CHECK_OK(a->insert(2, testutil::spanOf(rowValue(2))));
    // An open transaction reads its own uncommitted writes.
    ByteBuffer out;
    NVWAL_CHECK_OK(a->get(2, &out));
    EXPECT_EQ(out, rowValue(2));
    NVWAL_CHECK_OK(a->commit());

    NVWAL_CHECK_OK(b->begin());
    NVWAL_CHECK_OK(b->insert(3, testutil::spanOf(rowValue(3))));
    NVWAL_CHECK_OK(b->commit());

    for (RowId k = 1; k <= 3; ++k) {
        NVWAL_CHECK_OK(db->get(k, &out));
        EXPECT_EQ(out, rowValue(k));
    }
    EXPECT_EQ(db->mwPublishedEpoch(), db->mwHardenedEpoch());
    EXPECT_GT(db->statValue(stats::kWalMwHardens), 0u);

    // Single-writer-only surfaces are cleanly rejected, not wedged.
    EXPECT_TRUE(db->createTable("side").isUnsupported());
    EXPECT_TRUE(db->dropTable("side").isUnsupported());
    EXPECT_TRUE(db->vacuum().isUnsupported());
    EXPECT_TRUE(a->prepare(7).isUnsupported());
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST(Multiwriter, SnapshotReadsPinTheEpochFloor)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, mwConfig(2), &db));
    for (RowId k = 1; k <= 10; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    std::unique_ptr<Connection> reader;
    NVWAL_CHECK_OK(db->connect(&reader));
    NVWAL_CHECK_OK(reader->beginRead());
    EXPECT_EQ(db->statGauge(stats::kGaugeOpenSnapshots), 1u);

    // Epochs published after the pin stay invisible to the snapshot.
    NVWAL_CHECK_OK(db->update(1, testutil::spanOf(rowValue(1, 99))));
    for (RowId k = 11; k <= 15; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(reader->count(&n));
    EXPECT_EQ(n, 10u);
    ByteBuffer out;
    NVWAL_CHECK_OK(reader->get(1, &out));
    EXPECT_EQ(out, rowValue(1));
    EXPECT_TRUE(reader->get(12, &out).isNotFound());

    NVWAL_CHECK_OK(reader->endRead());
    EXPECT_EQ(db->statGauge(stats::kGaugeOpenSnapshots), 0u);
    NVWAL_CHECK_OK(reader->count(&n));
    EXPECT_EQ(n, 15u);
    NVWAL_CHECK_OK(reader->get(1, &out));
    EXPECT_EQ(out, rowValue(1, 99));
}

TEST(Multiwriter, ConflictSurfacesAndTransactRetries)
{
    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, mwConfig(4), &db));
    NVWAL_CHECK_OK(db->insert(1, testutil::spanOf(rowValue(1))));

    std::unique_ptr<Connection> a;
    std::unique_ptr<Connection> b;
    NVWAL_CHECK_OK(db->connect(&a));
    NVWAL_CHECK_OK(db->connect(&b));

    // A reads-then-writes key 1; B republishes its page in between;
    // A's optimistic validation must lose -- without ever blocking.
    NVWAL_CHECK_OK(a->begin());
    NVWAL_CHECK_OK(a->update(1, testutil::spanOf(rowValue(1, 10))));
    NVWAL_CHECK_OK(b->begin());
    NVWAL_CHECK_OK(b->update(1, testutil::spanOf(rowValue(1, 20))));
    NVWAL_CHECK_OK(b->commit());
    const Status lost = a->commit();
    EXPECT_TRUE(lost.isConflict()) << lost.toString();
    EXPECT_FALSE(a->inWrite());   // rolled back, nothing appended
    EXPECT_GE(db->statValue(stats::kWalLogConflicts), 1u);
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, rowValue(1, 20));   // B's value, not A's

    // transact() re-runs the body after the lost race.
    int calls = 0;
    const auto body = [&](Connection &txn) -> Status {
        ++calls;
        if (calls == 1) {
            // Invalidate the first attempt from the other connection.
            NVWAL_CHECK_OK(b->begin());
            NVWAL_CHECK_OK(
                b->update(1, testutil::spanOf(rowValue(1, 30))));
            NVWAL_CHECK_OK(b->commit());
        }
        return txn.update(1, testutil::spanOf(rowValue(1, 40)));
    };
    CommitOptions retrying;
    retrying.maxConflictRetries = 2;
    NVWAL_CHECK_OK(a->transact(body, retrying));
    EXPECT_EQ(calls, 2);
    EXPECT_GE(db->statValue(stats::kDbTxnConflictRetries), 1u);
    NVWAL_CHECK_OK(db->get(1, &out));
    EXPECT_EQ(out, rowValue(1, 40));

    // With retries exhausted the Conflict surfaces to the caller.
    int stubborn_calls = 0;
    const auto stubborn = [&](Connection &txn) -> Status {
        ++stubborn_calls;
        NVWAL_CHECK_OK(b->begin());
        NVWAL_CHECK_OK(b->update(
            1, testutil::spanOf(rowValue(1, 50 + stubborn_calls))));
        NVWAL_CHECK_OK(b->commit());
        return txn.update(1, testutil::spanOf(rowValue(1, 99)));
    };
    CommitOptions one_retry;
    one_retry.maxConflictRetries = 1;
    EXPECT_TRUE(a->transact(stubborn, one_retry).isConflict());
    EXPECT_EQ(stubborn_calls, 2);
}

/**
 * Four writer threads over page-disjoint key ranges: the seeded tree
 * gives every thread its own leaves (wide margins keep boundary
 * leaves untouched) and same-size updates leave the structure alone,
 * so optimistic validation must never fire. TSan coverage for the
 * lock-free append / publish / group-harden path.
 */
TEST(Multiwriter, DisjointWriterThreadsCommitWithoutConflicts)
{
    constexpr int kThreads = 4;
    constexpr RowId kRangeStride = 100000;
    constexpr int kSeeded = 256;    // per range
    constexpr int kMargin = 64;     // > leaf capacity: no shared leaf
    constexpr int kTxnsPerThread = 32;
    constexpr int kUpdatesPerTxn = 4;

    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, mwConfig(8), &db));
    NVWAL_CHECK_OK(db->begin());
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kSeeded; ++i) {
            const RowId key = t * kRangeStride + i;
            NVWAL_CHECK_OK(db->insert(key, testutil::spanOf(rowValue(key))));
        }
    NVWAL_CHECK_OK(db->commit());

    std::vector<std::unique_ptr<Connection>> conns(kThreads);
    for (int t = 0; t < kThreads; ++t)
        NVWAL_CHECK_OK(db->connect(&conns[t]));

    std::vector<Status> results(kThreads, Status::ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Connection &conn = *conns[t];
            for (int txn = 0; txn < kTxnsPerThread; ++txn) {
                CommitOptions options;
                if (txn % 2 == 0) {
                    options.durability = Durability::Async;
                    options.waitForHarden = false;
                }
                const Status s = conn.transact(
                    [&](Connection &c) -> Status {
                        for (int u = 0; u < kUpdatesPerTxn; ++u) {
                            const RowId key =
                                t * kRangeStride + kMargin +
                                txn * kUpdatesPerTxn + u;
                            NVWAL_RETURN_IF_ERROR(c.update(
                                key,
                                testutil::spanOf(rowValue(key, 7))));
                        }
                        return Status::ok();
                    },
                    options);
                if (!s.isOk()) {
                    results[t] = s;
                    return;
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        NVWAL_CHECK_OK(results[t]);

    NVWAL_CHECK_OK(db->flushAsyncCommits());
    EXPECT_EQ(db->mwPublishedEpoch(), db->mwHardenedEpoch());
    EXPECT_EQ(db->statValue(stats::kWalLogConflicts), 0u);
    EXPECT_EQ(db->statValue(stats::kDbTxnConflictRetries), 0u);

    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, static_cast<std::uint64_t>(kThreads) * kSeeded);
    ByteBuffer out;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kTxnsPerThread * kUpdatesPerTxn; ++i) {
            const RowId key = t * kRangeStride + kMargin + i;
            NVWAL_CHECK_OK(db->get(key, &out));
            EXPECT_EQ(out, rowValue(key, 7));
        }
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

/**
 * Four writer threads hammering the same sixteen keys: every commit
 * races on the shared leaf, and bounded transact() retries must
 * carry every transaction through. TSan coverage for the conflict
 * validation / rollback / retry path.
 */
TEST(Multiwriter, OverlappingWriterThreadsRetryThrough)
{
    constexpr int kThreads = 4;
    constexpr int kKeys = 16;
    constexpr int kTxnsPerThread = 16;

    Env env(envConfig());
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, mwConfig(4), &db));
    NVWAL_CHECK_OK(db->begin());
    for (RowId k = 0; k < kKeys; ++k)
        NVWAL_CHECK_OK(db->insert(k, testutil::spanOf(rowValue(k))));
    NVWAL_CHECK_OK(db->commit());

    std::vector<std::unique_ptr<Connection>> conns(kThreads);
    for (int t = 0; t < kThreads; ++t)
        NVWAL_CHECK_OK(db->connect(&conns[t]));

    CommitOptions retrying;
    retrying.maxConflictRetries = 256;
    std::vector<Status> results(kThreads, Status::ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int txn = 0; txn < kTxnsPerThread; ++txn) {
                const RowId key = txn % kKeys;
                const Status s = conns[t]->transact(
                    [&](Connection &c) {
                        return c.update(
                            key, testutil::spanOf(rowValue(
                                     key, 1000 + static_cast<std::uint64_t>(
                                                     t))));
                    },
                    retrying);
                if (!s.isOk()) {
                    results[t] = s;
                    return;
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        NVWAL_CHECK_OK(results[t]);

    // Every conflicted commit was retried (none exhausted the cap).
    EXPECT_EQ(db->statValue(stats::kDbTxnConflictRetries),
              db->statValue(stats::kWalLogConflicts));

    // Each key holds the complete value of SOME thread's last write.
    ByteBuffer out;
    for (RowId k = 0; k < kKeys; ++k) {
        NVWAL_CHECK_OK(db->get(k, &out));
        bool known = false;
        for (int t = 0; t < kThreads; ++t)
            known |= out ==
                     rowValue(k, 1000 + static_cast<std::uint64_t>(t));
        EXPECT_TRUE(known) << "key " << k << " holds a torn value";
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

TEST(Multiwriter, ReopenMergesEpochLogsByGlobalOrder)
{
    EnvConfig env_config = envConfig();
    Env env(env_config);
    DbConfig config = mwConfig(3);
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::unique_ptr<Connection> a;
    std::unique_ptr<Connection> b;
    NVWAL_CHECK_OK(db->connect(&a));
    NVWAL_CHECK_OK(db->connect(&b));
    CommitOptions no_wait;
    no_wait.durability = Durability::Async;
    no_wait.waitForHarden = false;

    // Interleave epochs across two logs, updating the same key from
    // both so the recovery merge must respect the global epoch order,
    // and leave the tail un-hardened (clean close, not a crash).
    for (int round = 0; round < 6; ++round) {
        Connection &conn = (round % 2 == 0) ? *a : *b;
        NVWAL_CHECK_OK(conn.begin());
        NVWAL_CHECK_OK(conn.insert(100 + round,
                                   testutil::spanOf(rowValue(100 + round))));
        NVWAL_CHECK_OK(
            conn.update(100, testutil::spanOf(rowValue(100, round))));
        NVWAL_CHECK_OK(conn.commit(round < 4 ? no_wait : CommitOptions{}));
    }
    a.reset();
    b.reset();
    db.reset();

    // Reopen: the per-connection logs still hold the epochs; the
    // merge replays them in epoch order above the anchored base.
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    EXPECT_TRUE(db->multiWriterActive());
    EXPECT_GT(db->statValue(stats::kWalEpochMergeTxns), 0u);
    std::uint64_t n = 0;
    NVWAL_CHECK_OK(db->count(&n));
    EXPECT_EQ(n, 6u);
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(100, &out));
    EXPECT_EQ(out, rowValue(100, 5));   // the newest epoch's update
    for (int round = 1; round < 6; ++round) {
        NVWAL_CHECK_OK(db->get(100 + round, &out));
        EXPECT_EQ(out, rowValue(100 + round));
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
    db.reset();

    // The anchored log layout is part of the format: a mismatched
    // writerLogs is a configuration error, not silent re-sharding.
    DbConfig wrong = config;
    wrong.writerLogs = 8;
    EXPECT_EQ(Database::open(env, wrong, &db).code(),
              StatusCode::InvalidArgument);
    db.reset();

    // The rejected open left the layout intact.
    NVWAL_CHECK_OK(Database::open(env, config, &db));
    NVWAL_CHECK_OK(db->get(100, &out));
    EXPECT_EQ(out, rowValue(100, 5));
    NVWAL_CHECK_OK(db->insert(999, testutil::spanOf(rowValue(999))));
}

// ---- multi-writer crash sweeps -------------------------------------

faultsim::SweepConfig
mwSweepConfig(std::uint32_t writer_logs)
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db = mwConfig(writer_logs);
    config.db.nvwal.nvBlockSize = 4096;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    return config;
}

/**
 * Exhaustive pessimistic sweep over interleaved multi-writer
 * transactions: every device op of every per-connection log append,
 * publish, group harden, and epoch merge is a crash point -- in
 * particular the window between one log's harden and the epoch
 * publish, where the other logs' epochs are still in flight.
 */
TEST(Multiwriter, CrashSweepPessimisticEveryDeviceOp)
{
    faultsim::SweepConfig config = mwSweepConfig(2);
    config.workload = faultsim::Workload::multiWriterTxns(2, 2);
    config.policies.push_back(faultsim::PolicyRun{});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_GT(report.totalOps, 0u);
    EXPECT_EQ(report.replays, report.crashes);
    EXPECT_EQ(report.commitEvents, 4u);
    // No-wait commits leave published-but-unhardened epochs, so some
    // crash points must land inside the cross-log loss window.
    EXPECT_GT(report.asyncReplays, 0u);
    // Forensics: every recovery parsed the surviving recorder ring.
    EXPECT_EQ(report.forensicsChecked, report.crashes);
    EXPECT_GT(report.frRecordsSurvived, 0u);
}

/**
 * Adversarial multi-seed sweep over three writers: random cache-line
 * survival across several per-connection log tails at once must
 * still recover to an epoch-ordered committed prefix above the
 * durable floor.
 */
TEST(Multiwriter, CrashSweepAdversarialMultiSeed)
{
    faultsim::SweepConfig config = mwSweepConfig(3);
    config.workload = faultsim::Workload::multiWriterTxns(3, 2);
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2, 3, 4},
                            0.5});
    config.maxPoints = 25;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GE(report.pointsSwept, 1u);
    EXPECT_LE(report.pointsSwept, 25u);
    EXPECT_EQ(report.replays, report.pointsSwept * 4u);
    EXPECT_EQ(report.crashes, report.replays);
    EXPECT_EQ(report.forensicsChecked, report.crashes);
}

} // namespace
} // namespace nvwal
