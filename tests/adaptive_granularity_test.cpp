/**
 * @file
 * Tests for adaptive logging granularity (DESIGN.md §14): the
 * diff-vs-full-page decision driven by the observed dirty ratio
 * (NvwalConfig::adaptiveFullFrameThresholdPct), its counters, the
 * pager-side EWMA, and crash safety of mixed-granularity logs --
 * pessimistic and adversarial fault sweeps over workloads that ship
 * both byte-diff and promoted full-page frames (the stride-1
 * pessimistic sweep includes a power-off between every full-page
 * frame append and its commit mark), plus a multi-writer reopen
 * whose per-connection epoch logs mix both granularities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/nvwal_log.hpp"
#include "db/connection.hpp"
#include "db/database.hpp"
#include "db/env.hpp"
#include "faultsim/crash_sweep.hpp"
#include "pager/page_source.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;
constexpr std::uint32_t kReserved = 24;

class AdaptiveGranularityTest : public ::testing::Test
{
  protected:
    AdaptiveGranularityTest()
        : env(makeEnvConfig()), dbFile(env.fs, "t.db", kPageSize)
    {
        NVWAL_CHECK_OK(dbFile.open());
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::tuna(500);
        return c;
    }

    void
    openLog(std::uint32_t threshold_pct)
    {
        config.adaptiveFullFrameThresholdPct = threshold_pct;
        log = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                         kPageSize, kReserved, config,
                                         env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log->recover(&db_size));
    }

    /**
     * Commit one frame for page 3 whose dirty ranges cover
     * @p dirty_bytes starting at 0, optionally with a pager-side
     * EWMA claim.
     */
    void
    commitDirty(const ByteBuffer &page, std::uint32_t dirty_bytes,
                std::uint8_t observed_pct = 0)
    {
        DirtyRanges ranges;
        ranges.mark(0, dirty_bytes);
        std::vector<FrameWrite> frames{FrameWrite{
            3, testutil::spanOf(page), &ranges, observed_pct}};
        NVWAL_CHECK_OK(log->writeFrames(frames, true, 4));
    }

    std::uint64_t promoted() const
    { return env.stats.get(stats::kWalFullFramesAdaptive); }
    std::uint64_t diffs() const
    { return env.stats.get(stats::kWalDiffFrames); }
    std::uint64_t shortcuts() const
    { return env.stats.get(stats::kWalFullFrameShortcuts); }

    /** @p page with only its first @p prefix bytes applied to a
     *  zero base -- what a diff-only chain materializes to. */
    static ByteBuffer
    diffOverZeroBase(const ByteBuffer &page, std::uint32_t prefix)
    {
        ByteBuffer expected(kPageSize, 0);
        std::copy(page.begin(), page.begin() + prefix,
                  expected.begin());
        return expected;
    }

    Env env;
    DbFile dbFile;
    NvwalConfig config;  // UH+LS+Diff defaults
    std::unique_ptr<NvwalLog> log;
};

/** > 50% of the page dirty ships one full-page frame. */
TEST_F(AdaptiveGranularityTest, HeavyCommitPromotesToFullFrame)
{
    openLog(50);
    const ByteBuffer page = testutil::makeValue(kPageSize, 7);
    commitDirty(page, 3 * kPageSize / 4);  // 75% dirty
    EXPECT_EQ(promoted(), 1u);
    EXPECT_EQ(diffs(), 0u);

    // The promoted frame carries the WHOLE page (not just the dirty
    // 75%) and anchors the read path's full-frame shortcut -- it is
    // wire-identical to a natural full-page frame.
    const std::uint64_t shortcuts_before = shortcuts();
    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
    EXPECT_EQ(shortcuts(), shortcuts_before + 1);
}

/** A small diff stays a diff. */
TEST_F(AdaptiveGranularityTest, LightCommitStaysDiff)
{
    openLog(50);
    const ByteBuffer page = testutil::makeValue(kPageSize, 8);
    commitDirty(page, 400);  // ~10% dirty
    EXPECT_EQ(promoted(), 0u);
    EXPECT_EQ(diffs(), 1u);

    // Only the 400 dirty bytes shipped; the rest replays from the
    // (zero) base image.
    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, diffOverZeroBase(page, 400));
}

/** The decision boundary is exclusive: pct == threshold stays diff. */
TEST_F(AdaptiveGranularityTest, ThresholdBoundaryIsExclusive)
{
    openLog(50);
    const ByteBuffer page = testutil::makeValue(kPageSize, 9);
    commitDirty(page, kPageSize / 2);  // exactly 50%
    EXPECT_EQ(promoted(), 0u);
    EXPECT_EQ(diffs(), 1u);
}

/** Threshold 0 disables the promotion entirely. */
TEST_F(AdaptiveGranularityTest, ZeroThresholdDisables)
{
    openLog(0);
    const ByteBuffer page = testutil::makeValue(kPageSize, 10);
    commitDirty(page, kPageSize - 100);  // ~98% dirty
    EXPECT_EQ(promoted(), 0u);
    EXPECT_EQ(diffs(), 1u);
    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, diffOverZeroBase(page, kPageSize - 100));
}

/** A raised threshold keeps medium commits as diffs. */
TEST_F(AdaptiveGranularityTest, ThresholdKnobMovesTheDecision)
{
    openLog(90);
    const ByteBuffer page = testutil::makeValue(kPageSize, 11);
    commitDirty(page, 3 * kPageSize / 4);  // 75% < 90
    EXPECT_EQ(promoted(), 0u);
    EXPECT_EQ(diffs(), 1u);
    commitDirty(page, kPageSize - 40);     // ~99% > 90
    EXPECT_EQ(promoted(), 1u);
}

/** The pager's EWMA overrides this commit's ranges when provided. */
TEST_F(AdaptiveGranularityTest, ObservedDirtyPctOverridesRanges)
{
    openLog(50);
    const ByteBuffer page = testutil::makeValue(kPageSize, 12);
    // Small current diff, but history says the page runs hot.
    commitDirty(page, 200, /*observed_pct=*/80);
    EXPECT_EQ(promoted(), 1u);
    // Large current diff, but history says the page runs cold: the
    // EWMA wins in both directions.
    commitDirty(page, 3 * kPageSize / 4, /*observed_pct=*/20);
    EXPECT_EQ(promoted(), 1u);
    EXPECT_EQ(diffs(), 1u);
}

/** A natural full-page write is not counted as a promotion. */
TEST_F(AdaptiveGranularityTest, NaturalFullPageIsNotCountedAdaptive)
{
    openLog(50);
    const ByteBuffer page = testutil::makeValue(kPageSize, 13);
    commitDirty(page, kPageSize);
    EXPECT_EQ(promoted(), 0u);
    // ...nor as a byte-diff: the counters partition only the frames
    // the adaptive decision ruled on.
    EXPECT_EQ(diffs(), 0u);
    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
}

/** A promoted frame anchors later reads (truncates the replay). */
TEST_F(AdaptiveGranularityTest, PromotedFrameBecomesReplayAnchor)
{
    openLog(50);
    ByteBuffer page = testutil::makeValue(kPageSize, 14);
    commitDirty(page, 300);                // diff chain head
    commitDirty(page, 3 * kPageSize / 4);  // promoted -> anchor
    page[100] = 0xEE;
    commitDirty(page, 200);                // trailing diff

    const std::uint64_t shortcuts_before =
        env.stats.get(stats::kWalFullFrameShortcuts);
    ByteBuffer out(kPageSize);
    NVWAL_CHECK_OK(log->readPage(3, ByteSpan(out.data(), out.size())));
    EXPECT_EQ(out, page);
    EXPECT_EQ(env.stats.get(stats::kWalFullFrameShortcuts),
              shortcuts_before + 1);
}

/** The pager-side EWMA seeds with the first ratio, then averages. */
TEST(CachedPageEwma, SeedsThenSmoothes)
{
    CachedPage page;
    page.buf.assign(kPageSize, 0);
    EXPECT_EQ(page.noteDirtyRatio(), 0u);  // nothing dirty yet

    page.dirty.mark(0, kPageSize / 2);     // 50%
    EXPECT_EQ(page.noteDirtyRatio(), 50u);
    page.dirty.clear();

    page.dirty.mark(0, kPageSize / 4);     // 25% -> (50+25+1)/2 = 38
    EXPECT_EQ(page.noteDirtyRatio(), 38u);
    page.dirty.clear();

    // Clean commits leave the EWMA untouched.
    EXPECT_EQ(page.noteDirtyRatio(), 38u);

    page.dirty.mark(0, kPageSize);         // 100% -> (38+100+1)/2 = 69
    EXPECT_EQ(page.noteDirtyRatio(), 69u);
}

// ---- crash safety of mixed-granularity logs ------------------------

/**
 * A workload whose transactions alternate between light updates
 * (byte-diff frames) and heavy multi-page rewrites the adaptive
 * decision promotes to full-page frames. Keys live in the warmup so
 * the sweep updates existing rows.
 */
faultsim::Workload
mixedGranularityTxns(int txns)
{
    faultsim::Workload w;
    for (int txn = 0; txn < txns; ++txn) {
        w.phase("mixed txn " + std::to_string(txn));
        w.begin();
        // Light: one small update -> a diff frame.
        w.insert(500 + txn,
                 testutil::makeValue(60, 7000 + txn));
        if (txn % 2 == 1) {
            // Heavy: rewrite two large rows on the same leaf; the
            // page's dirty ratio crosses the 50% default and the
            // commit ships one promoted full-page frame.
            w.update(9000, testutil::makeValue(1500, 100 + txn));
            w.update(9001, testutil::makeValue(1500, 200 + txn));
        }
        w.commit();
    }
    return w;
}

faultsim::SweepConfig
mixedSweepConfig()
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db.walMode = WalMode::Nvwal;
    config.db.nvwal.nvBlockSize = 4096;
    config.db.nvwal.diffLogging = true;
    config.db.nvwal.userHeap = true;
    // Warmup seeds the heavy rows the sweep rewrites.
    config.warmup.phase("warmup");
    config.warmup.begin();
    config.warmup.insert(9000, testutil::makeValue(1500, 1));
    config.warmup.insert(9001, testutil::makeValue(1500, 2));
    config.warmup.commit();
    config.workload = mixedGranularityTxns(4);
    return config;
}

/**
 * The mixed workload really does ship both frame granularities --
 * driven against a live Database with the sweep's exact
 * configuration, so the crash sweeps below provably exercise both
 * diff frames and adaptive full-page promotions.
 */
TEST(AdaptiveGranularityCrash, MixedWorkloadShipsBothGranularities)
{
    faultsim::SweepConfig config = mixedSweepConfig();
    Env env(config.env);
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config.db, &db));
    NVWAL_CHECK_OK(db->begin());
    NVWAL_CHECK_OK(db->insert(
        9000, testutil::spanOf(testutil::makeValue(1500, 1))));
    NVWAL_CHECK_OK(db->insert(
        9001, testutil::spanOf(testutil::makeValue(1500, 2))));
    NVWAL_CHECK_OK(db->commit());
    for (int txn = 0; txn < 4; ++txn) {
        NVWAL_CHECK_OK(db->begin());
        NVWAL_CHECK_OK(db->insert(
            500 + txn, testutil::spanOf(testutil::makeValue(60, txn))));
        if (txn % 2 == 1) {
            NVWAL_CHECK_OK(db->update(
                9000,
                testutil::spanOf(testutil::makeValue(1500, 100 + txn))));
            NVWAL_CHECK_OK(db->update(
                9001,
                testutil::spanOf(testutil::makeValue(1500, 200 + txn))));
        }
        NVWAL_CHECK_OK(db->commit());
    }
    EXPECT_GT(env.stats.get(stats::kWalFullFramesAdaptive), 0u);
    EXPECT_GT(env.stats.get(stats::kWalDiffFrames), 0u);
}

/**
 * Pessimistic stride-1 sweep: every persistence-relevant device op
 * of the mixed workload is a crash point -- including the gap
 * between a promoted full-page frame's append and its commit mark,
 * where recovery must discard the unmarked full frame and keep the
 * page's earlier diff chain.
 */
TEST(AdaptiveGranularityCrash, PessimisticSweepEveryDeviceOp)
{
    faultsim::SweepConfig config = mixedSweepConfig();
    config.policies.push_back(faultsim::PolicyRun{});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_GT(report.totalOps, 0u);
    EXPECT_EQ(report.replays, report.crashes);
    EXPECT_EQ(report.commitEvents, 4u);
}

/**
 * Adversarial multi-seed sweep: random cache-line survival across a
 * log tail holding promoted full-page frames next to byte-diffs
 * must still recover a committed prefix (a torn 4 KB frame is the
 * largest single unit the checksum chain has to reject).
 */
TEST(AdaptiveGranularityCrash, AdversarialSweepMultiSeed)
{
    faultsim::SweepConfig config = mixedSweepConfig();
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1, 2, 3, 4},
                            0.5});
    config.maxPoints = 40;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GE(report.pointsSwept, 1u);
    EXPECT_LE(report.pointsSwept, 40u);
    EXPECT_EQ(report.replays, report.pointsSwept * 4u);
}

/**
 * Multi-writer: per-connection epoch logs holding a mix of diff and
 * promoted full-page frames merge correctly at reopen (epoch order,
 * newest value wins, integrity intact).
 */
TEST(AdaptiveGranularityCrash, MultiWriterMixedGranularityReopen)
{
    EnvConfig env_config;
    env_config.cost = CostModel::nexus5();
    Env env(env_config);
    DbConfig config;
    config.walMode = WalMode::Nvwal;
    config.multiWriter = true;
    config.writerLogs = 3;
    std::unique_ptr<Database> db;
    NVWAL_CHECK_OK(Database::open(env, config, &db));

    std::unique_ptr<Connection> a;
    std::unique_ptr<Connection> b;
    NVWAL_CHECK_OK(db->connect(&a));
    NVWAL_CHECK_OK(db->connect(&b));

    NVWAL_CHECK_OK(a->begin());
    NVWAL_CHECK_OK(
        a->insert(9000, testutil::spanOf(
                            testutil::makeValue(1500, 1))));
    NVWAL_CHECK_OK(
        a->insert(9001, testutil::spanOf(
                            testutil::makeValue(1500, 2))));
    NVWAL_CHECK_OK(a->commit(CommitOptions{}));
    CommitOptions no_wait;
    no_wait.durability = Durability::Async;
    no_wait.waitForHarden = false;

    // Alternate connections; even rounds write heavy epochs (the
    // adaptive decision promotes them), odd rounds small diffs, and
    // the tail stays un-hardened (clean close, not a crash).
    for (int round = 0; round < 6; ++round) {
        Connection &conn = (round % 2 == 0) ? *a : *b;
        NVWAL_CHECK_OK(conn.begin());
        if (round % 2 == 0) {
            NVWAL_CHECK_OK(conn.update(
                9000, testutil::spanOf(
                          testutil::makeValue(1500, 10 + round))));
            NVWAL_CHECK_OK(conn.update(
                9001, testutil::spanOf(
                          testutil::makeValue(1500, 20 + round))));
        } else {
            NVWAL_CHECK_OK(conn.insert(
                100 + round, testutil::spanOf(
                                 testutil::makeValue(60, round))));
        }
        NVWAL_CHECK_OK(
            conn.commit(round < 4 ? no_wait : CommitOptions{}));
    }
    const std::uint64_t promoted =
        db->statValue(stats::kWalFullFramesAdaptive);
    EXPECT_GT(promoted, 0u);
    EXPECT_GT(db->statValue(stats::kWalDiffFrames), 0u);
    a.reset();
    b.reset();
    db.reset();

    NVWAL_CHECK_OK(Database::open(env, config, &db));
    EXPECT_TRUE(db->multiWriterActive());
    EXPECT_GT(db->statValue(stats::kWalEpochMergeTxns), 0u);
    ByteBuffer out;
    NVWAL_CHECK_OK(db->get(9000, &out));
    EXPECT_EQ(out, testutil::makeValue(1500, 14));  // round 4's update
    NVWAL_CHECK_OK(db->get(9001, &out));
    EXPECT_EQ(out, testutil::makeValue(1500, 24));
    for (int round = 1; round < 6; round += 2) {
        NVWAL_CHECK_OK(db->get(100 + round, &out));
        EXPECT_EQ(out, testutil::makeValue(60, round));
    }
    NVWAL_CHECK_OK(db->verifyIntegrity());
}

} // namespace
} // namespace nvwal
