/**
 * @file
 * Crash consistency across platform geometries: the flush-coverage
 * logic must be correct for any cache line size (flush ranges are
 * line-aligned; commit marks share lines with frame headers), any
 * NVWAL block size (frames straddle node boundaries differently) and
 * any page size. Each combination runs a small injected-crash sweep.
 */

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

struct GeometryParam
{
    std::uint32_t cacheLine;
    std::uint32_t nvBlockSize;
    std::uint32_t pageSize;
};

class GeometryCrash : public ::testing::TestWithParam<GeometryParam>
{
};

TEST_P(GeometryCrash, InjectedCrashSweepStaysAtomic)
{
    const GeometryParam geo = GetParam();

    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(700);
    config.env.cost.cacheLineSize = geo.cacheLine;
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 4096;
    config.env.seed = 0xfeed;
    config.db.walMode = WalMode::Nvwal;
    config.db.pageSize = geo.pageSize;
    config.db.nvwal.nvBlockSize = geo.nvBlockSize;
    for (RowId k = 0; k < 8; ++k) {
        config.warmup.insert(
            k, faultsim::Workload::valueFor(
                   120, static_cast<std::uint64_t>(k)));
    }
    config.workload.phase("victim txn").begin();
    for (RowId k = 100; k < 103; ++k) {
        config.workload.insert(
            k, faultsim::Workload::valueFor(
                   120, static_cast<std::uint64_t>(k)));
    }
    config.workload.commit();
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Pessimistic, {0}, 0.5});
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {1}, 0.5});
    config.maxPoints = 25;

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok())
        << "line=" << geo.cacheLine << " block=" << geo.nvBlockSize
        << " page=" << geo.pageSize << "\n" << report.summary();
    EXPECT_GT(report.crashes, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryCrash,
    ::testing::Values(GeometryParam{32, 8192, 4096},
                      GeometryParam{64, 8192, 4096},
                      GeometryParam{128, 8192, 4096},
                      GeometryParam{256, 16384, 4096},
                      GeometryParam{64, 4096, 2048},
                      GeometryParam{32, 4096, 1024},
                      GeometryParam{64, 32768, 8192}),
    [](const auto &info) {
        return "line" + std::to_string(info.param.cacheLine) + "_blk" +
               std::to_string(info.param.nvBlockSize) + "_pg" +
               std::to_string(info.param.pageSize);
    });

/**
 * Frame placement at exact node-capacity boundaries: craft payload
 * sizes so a frame ends exactly at the node's last byte, one byte
 * short, and one byte over, and verify recovery in each case.
 */
TEST(NodeBoundary, ExactFitFramesRecover)
{
    for (int delta = -9; delta <= 9; delta += 3) {
        EnvConfig env_config;
        env_config.cost = CostModel::tuna(500);
        env_config.nvramBytes = 8 << 20;
        env_config.flashBlocks = 2048;
        Env env(env_config);
        DbFile db_file(env.fs, "t.db", 4096);
        NVWAL_CHECK_OK(db_file.open());
        NvwalConfig config;
        config.nvBlockSize = 4096;
        NvwalLog log(env.heap, env.pmem, db_file, 4096, 24, config,
                     env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log.recover(&db_size));

        // First frame sized to leave exactly (32 + 256 + delta)
        // bytes of node space; the second frame needs 32 + 256.
        const std::uint32_t capacity = 4096;  // one heap block
        const std::uint32_t first_payload =
            capacity - 8 /*node hdr*/ - 32 /*frame hdr*/ -
            (32 + 256 + static_cast<std::uint32_t>(delta + 9));
        ByteBuffer page = testutil::makeValue(4096, 1);
        DirtyRanges r1;
        r1.mark(0, first_payload);
        DirtyRanges r2;
        r2.mark(100, 356);
        std::vector<FrameWrite> frames{
            FrameWrite{2, testutil::spanOf(page), &r1},
            FrameWrite{3, testutil::spanOf(page), &r2}};
        NVWAL_CHECK_OK(log.writeFrames(frames, true, 3));

        env.powerFail(FailurePolicy::Pessimistic);
        NvwalLog fresh(env.heap, env.pmem, db_file, 4096, 24, config,
                       env.stats);
        NVWAL_CHECK_OK(fresh.recover(&db_size));
        EXPECT_EQ(db_size, 3u) << "delta " << delta;
        EXPECT_EQ(fresh.framesSinceCheckpoint(), 2u) << "delta " << delta;
        ByteBuffer out(4096);
        EXPECT_TRUE(fresh.readPage(3, ByteSpan(out.data(), 4096)).isOk());
    }
}

} // namespace
} // namespace nvwal
