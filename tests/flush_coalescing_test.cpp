/**
 * @file
 * Tests for the coalesced lazy synchronization path (DESIGN.md §9):
 * cache lines shared by adjacent small diffs are flushed once,
 * marshalled frame placement collapses a transaction's flush batch
 * into contiguous runs, eager mode is unaffected, and recovery over
 * the marshalled-placement layout is unchanged (crash sweep).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/nvwal_log.hpp"
#include "db/env.hpp"
#include "faultsim/crash_sweep.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

constexpr std::uint32_t kPageSize = 4096;
constexpr std::uint32_t kReserved = 24;

class FlushCoalescingTest : public ::testing::Test
{
  protected:
    FlushCoalescingTest()
        : env(makeEnvConfig()), dbFile(env.fs, "t.db", kPageSize)
    {
        NVWAL_CHECK_OK(dbFile.open());
    }

    static EnvConfig
    makeEnvConfig()
    {
        EnvConfig c;
        c.cost = CostModel::tuna(500);
        return c;
    }

    void
    openLog(SyncMode sync, DiffGranularity granularity)
    {
        config.syncMode = sync;
        config.diffLogging = true;
        config.diffGranularity = granularity;
        config.userHeap = true;
        log = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                         kPageSize, kReserved, config,
                                         env.stats);
        std::uint32_t db_size = 0;
        NVWAL_CHECK_OK(log->recover(&db_size));
    }

    Env env;
    DbFile dbFile;
    NvwalConfig config;
    std::unique_ptr<NvwalLog> log;
};

/**
 * Two small diffs (far enough apart in the page that DirtyRanges
 * keeps them as separate ranges) become two 40-byte frames placed
 * back to back in NVRAM, sharing cache lines; the lazy batch must
 * merge them into one flush run and count the deduplicated lines.
 */
TEST_F(FlushCoalescingTest, SharedLineDiffsFlushOnceAndCoalesce)
{
    openLog(SyncMode::Lazy, DiffGranularity::MultiRange);

    ByteBuffer page(kPageSize, 0);
    std::memset(page.data() + 0, 0x11, 8);
    std::memset(page.data() + 100, 0x22, 8);
    DirtyRanges ranges;
    ranges.mark(0, 8);
    ranges.mark(100, 108);
    ASSERT_EQ(ranges.ranges().size(), 2u);

    const auto coalesced0 = env.stats.get(stats::kWalFlushRangesCoalesced);
    const auto deduped0 = env.stats.get(stats::kPmemFlushLinesDeduped);
    std::vector<FrameWrite> frames{
        FrameWrite{3, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));

    // Two frames, one merged flush run.
    EXPECT_EQ(env.stats.get(stats::kWalFlushRangesCoalesced) - coalesced0,
              1u);
    EXPECT_GE(env.stats.get(stats::kPmemFlushLinesDeduped) - deduped0, 1u);

    // Correctness: the merged flush changes nothing about the data.
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(
        log->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
}

/**
 * A diff whose frame straddles a cache-line boundary must be fully
 * covered by the coalesced flush: after a pessimistic power failure
 * (every unflushed line dropped), recovery reproduces the commit.
 */
TEST_F(FlushCoalescingTest, StraddlingDiffSurvivesPessimisticCrash)
{
    openLog(SyncMode::Lazy, DiffGranularity::MultiRange);

    // 50 dirty bytes starting mid-line: the frame spans at least
    // three cache lines and both its edges are unaligned.
    ByteBuffer page(kPageSize, 0);
    std::memset(page.data() + 27, 0x5A, 50);
    DirtyRanges ranges;
    ranges.mark(27, 77);
    std::vector<FrameWrite> frames{
        FrameWrite{5, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 5));

    env.powerFail(FailurePolicy::Pessimistic);

    auto fresh = std::make_unique<NvwalLog>(env.heap, env.pmem, dbFile,
                                            kPageSize, kReserved, config,
                                            env.stats);
    std::uint32_t db_size = 0;
    NVWAL_CHECK_OK(fresh->recover(&db_size));
    EXPECT_EQ(db_size, 5u);
    ByteBuffer out(kPageSize);
    ASSERT_TRUE(
        fresh->readPage(5, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
}

/**
 * Marshalled placement: a multi-frame transaction's frames sit back
 * to back in one node, so the whole lazy batch collapses into a
 * single contiguous flush run (full-page frames are line-aligned;
 * nothing is deduplicated, only merged).
 */
TEST_F(FlushCoalescingTest, MarshalledTxnCollapsesToOneFlushRun)
{
    openLog(SyncMode::Lazy, DiffGranularity::SingleRange);

    ByteBuffer p3 = testutil::makeValue(kPageSize, 3);
    ByteBuffer p4 = testutil::makeValue(kPageSize, 4);
    DirtyRanges full;
    full.mark(0, kPageSize);

    const auto coalesced0 = env.stats.get(stats::kWalFlushRangesCoalesced);
    const auto deduped0 = env.stats.get(stats::kPmemFlushLinesDeduped);
    std::vector<FrameWrite> frames{
        FrameWrite{3, testutil::spanOf(p3), &full},
        FrameWrite{4, testutil::spanOf(p4), &full}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 4));

    // Two full-page frames merged into one run. Frames are 8-byte
    // aligned, so the only line both frames can touch is the one
    // straddling their shared boundary.
    EXPECT_EQ(env.stats.get(stats::kWalFlushRangesCoalesced) - coalesced0,
              1u);
    EXPECT_LE(env.stats.get(stats::kPmemFlushLinesDeduped) - deduped0, 1u);
    // The reservation put both frames (2 x 4128 bytes) in one node.
    EXPECT_EQ(log->nodeCount(), 1u);

    ByteBuffer out(kPageSize);
    ASSERT_TRUE(
        log->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p3);
    ASSERT_TRUE(
        log->readPage(4, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, p4);
}

/** Eager mode flushes per frame; the coalescer must stay out. */
TEST_F(FlushCoalescingTest, EagerBatchUnaffected)
{
    openLog(SyncMode::Eager, DiffGranularity::MultiRange);

    ByteBuffer page(kPageSize, 0);
    std::memset(page.data() + 0, 0x33, 8);
    std::memset(page.data() + 100, 0x44, 8);
    DirtyRanges ranges;
    ranges.mark(0, 8);
    ranges.mark(100, 108);
    ASSERT_EQ(ranges.ranges().size(), 2u);

    const auto coalesced0 = env.stats.get(stats::kWalFlushRangesCoalesced);
    const auto deduped0 = env.stats.get(stats::kPmemFlushLinesDeduped);
    std::vector<FrameWrite> frames{
        FrameWrite{3, testutil::spanOf(page), &ranges}};
    NVWAL_CHECK_OK(log->writeFrames(frames, true, 3));

    EXPECT_EQ(env.stats.get(stats::kWalFlushRangesCoalesced) - coalesced0,
              0u);
    EXPECT_EQ(env.stats.get(stats::kPmemFlushLinesDeduped) - deduped0, 0u);

    ByteBuffer out(kPageSize);
    ASSERT_TRUE(
        log->readPage(3, ByteSpan(out.data(), out.size())).isOk());
    EXPECT_EQ(out, page);
}

/**
 * Crash sweep over the marshalled-placement + coalesced-sync path:
 * multi-insert transactions (several frames per commit, placed
 * contiguously) swept exhaustively under the pessimistic policy and
 * under the adversarial policy with two seeds. Recovery invariants
 * must hold at every device-operation crash point.
 */
TEST(FlushCoalescingSweep, MarshalledPlacementRecoveryUnchanged)
{
    faultsim::SweepConfig config;
    config.env.cost = CostModel::tuna(500);
    config.env.nvramBytes = 8 << 20;
    config.env.flashBlocks = 2048;
    config.db.walMode = WalMode::Nvwal;
    config.db.nvwal.syncMode = SyncMode::Lazy;
    config.db.nvwal.diffLogging = true;
    config.db.nvwal.userHeap = true;
    config.db.nvwal.nvBlockSize = 4096;
    config.warmup = faultsim::Workload::standardTxns(0, 1);
    config.workload = faultsim::Workload::standardTxns(1, 2);
    config.policies.push_back(faultsim::PolicyRun{});  // pessimistic
    config.policies.push_back(
        faultsim::PolicyRun{FailurePolicy::Adversarial, {7, 11}, 0.5});

    faultsim::SweepReport report;
    NVWAL_CHECK_OK(faultsim::CrashSweep(config).run(&report));
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.pointsSwept, report.totalOps);
    EXPECT_GT(report.totalOps, 0u);
}

} // namespace
} // namespace nvwal
