/**
 * @file
 * Unit tests for the Heapo-style NVRAM heap manager: allocation
 * states, the pending/in-use protocol, namespaces, extents and
 * crash recovery (paper sections 3.3 and 4.3).
 */

#include <gtest/gtest.h>

#include "heap/nv_heap.hpp"
#include "test_util.hpp"

namespace nvwal
{
namespace
{

class NvHeapTest : public ::testing::Test
{
  protected:
    NvHeapTest()
        : cost(CostModel::tuna()),
          dev(4 << 20, cost.cacheLineSize, stats),
          pmem(dev, clock, cost, stats),
          heap(pmem, stats)
    {
        NVWAL_CHECK_OK(heap.format(4096));
    }

    SimClock clock;
    MetricsRegistry stats;
    CostModel cost;
    NvramDevice dev;
    Pmem pmem;
    NvHeap heap;
};

TEST_F(NvHeapTest, FormatThenAttach)
{
    EXPECT_EQ(heap.blockSize(), 4096u);
    EXPECT_GT(heap.numBlocks(), 100u);
    // A second heap object over the same device can attach.
    NvHeap other(pmem, stats);
    EXPECT_TRUE(other.attach().isOk());
    EXPECT_EQ(other.blockSize(), 4096u);
    EXPECT_EQ(other.dataOffset(), heap.dataOffset());
}

TEST_F(NvHeapTest, AttachFailsOnUnformattedDevice)
{
    MetricsRegistry s2;
    NvramDevice d2(1 << 20, 32, s2);
    Pmem p2(d2, clock, cost, s2);
    NvHeap h2(p2, s2);
    EXPECT_TRUE(h2.attach().isCorruption());
}

TEST_F(NvHeapTest, MallocMarksInUse)
{
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(100, &off));
    EXPECT_EQ(heap.blockStateAt(off), BlockState::InUse);
    EXPECT_EQ(heap.extentBlocksAt(off), 1u);
}

TEST_F(NvHeapTest, MultiBlockExtent)
{
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(10000, &off));  // 3 x 4 KB blocks
    EXPECT_EQ(heap.extentBlocksAt(off), 3u);
    NVWAL_CHECK_OK(heap.nvFree(off));
    EXPECT_EQ(heap.blockStateAt(off), BlockState::Free);
}

TEST_F(NvHeapTest, AllocationsAreDisjoint)
{
    NvOffset a, b, c;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &a));
    NVWAL_CHECK_OK(heap.nvMalloc(8192, &b));
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &c));
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    // b's extent must not contain c.
    EXPECT_TRUE(c >= b + 8192 || c < b);
}

TEST_F(NvHeapTest, FreeThenReuse)
{
    NvOffset a;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &a));
    NVWAL_CHECK_OK(heap.nvFree(a));
    NvOffset b;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &b));
    EXPECT_EQ(a, b);  // first-fit reuses the freed block
}

TEST_F(NvHeapTest, PreMallocIsPending)
{
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvPreMalloc(4096, &off));
    EXPECT_EQ(heap.blockStateAt(off), BlockState::Pending);
    NVWAL_CHECK_OK(heap.nvSetUsedFlag(off));
    EXPECT_EQ(heap.blockStateAt(off), BlockState::InUse);
}

TEST_F(NvHeapTest, SetUsedFlagRejectsNonPending)
{
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off));
    EXPECT_FALSE(heap.nvSetUsedFlag(off).isOk());
}

TEST_F(NvHeapTest, RecoveryReclaimsPendingBlocks)
{
    // Section 4.3, failure case 1: a crash between nv_pre_malloc()
    // and linking leaves a pending block; recovery reclaims it.
    NvOffset pend, used;
    NVWAL_CHECK_OK(heap.nvPreMalloc(8192, &pend));
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &used));

    dev.powerFail(FailurePolicy::Pessimistic);
    NvHeap recovered(pmem, stats);
    NVWAL_CHECK_OK(recovered.attach());
    std::uint64_t reclaimed = 0;
    NVWAL_CHECK_OK(recovered.recover(&reclaimed));
    EXPECT_EQ(reclaimed, 2u);  // the two pending blocks of the extent
    EXPECT_EQ(recovered.blockStateAt(pend), BlockState::Free);
    EXPECT_EQ(recovered.blockStateAt(used), BlockState::InUse);
}

TEST_F(NvHeapTest, RecoveryKeepsInUseBlocks)
{
    NvOffset a, b;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &a));
    NVWAL_CHECK_OK(heap.nvMalloc(12288, &b));
    dev.powerFail(FailurePolicy::Pessimistic);
    NvHeap recovered(pmem, stats);
    NVWAL_CHECK_OK(recovered.attach());
    NVWAL_CHECK_OK(recovered.recover());
    EXPECT_EQ(recovered.blockStateAt(a), BlockState::InUse);
    EXPECT_EQ(recovered.blockStateAt(b), BlockState::InUse);
    EXPECT_EQ(recovered.extentBlocksAt(b), 3u);
}

TEST_F(NvHeapTest, MetadataSurvivesOnlyWhenPersisted)
{
    // The heap persists its descriptor updates internally, so an
    // allocation must survive a pessimistic power failure.
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off));
    dev.powerFail(FailurePolicy::Pessimistic);
    NvHeap recovered(pmem, stats);
    NVWAL_CHECK_OK(recovered.attach());
    EXPECT_EQ(recovered.blockStateAt(off), BlockState::InUse);
}

TEST_F(NvHeapTest, NamespaceRoots)
{
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off));
    NVWAL_CHECK_OK(heap.setRoot("wal", off));

    NvOffset found = 0;
    NVWAL_CHECK_OK(heap.getRoot("wal", &found));
    EXPECT_EQ(found, off);
    EXPECT_TRUE(heap.getRoot("nope", &found).isNotFound());

    // Rebinding overwrites.
    NvOffset off2;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off2));
    NVWAL_CHECK_OK(heap.setRoot("wal", off2));
    NVWAL_CHECK_OK(heap.getRoot("wal", &found));
    EXPECT_EQ(found, off2);
}

TEST_F(NvHeapTest, NamespaceSurvivesReboot)
{
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off));
    NVWAL_CHECK_OK(heap.setRoot("database-log", off));
    dev.powerFail(FailurePolicy::Pessimistic);

    NvHeap recovered(pmem, stats);
    NVWAL_CHECK_OK(recovered.attach());
    NvOffset found = 0;
    NVWAL_CHECK_OK(recovered.getRoot("database-log", &found));
    EXPECT_EQ(found, off);
}

TEST_F(NvHeapTest, NamespaceNameValidation)
{
    NvOffset out;
    EXPECT_FALSE(heap.setRoot("", 0).isOk());
    EXPECT_FALSE(
        heap.setRoot("a-name-that-is-way-too-long-for-a-slot", 0).isOk());
    EXPECT_FALSE(heap.getRoot("", &out).isOk());
}

TEST_F(NvHeapTest, SetRootRejectsZeroOffset)
{
    // Offset 0 is the heap superblock; a zero root doubles as the
    // "name landed but root did not" crash marker, so it can never
    // be a legal binding.
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off));
    EXPECT_FALSE(heap.setRoot("app", 0).isOk());
    NVWAL_CHECK_OK(heap.setRoot("app", off));
}

TEST_F(NvHeapTest, FreshRootBindingIsCrashAtomic)
{
    // Sweep a power failure across every device op of a fresh-slot
    // setRoot(): afterwards the binding either does not exist or
    // reads the published offset -- never a bound name with root 0.
    // Before the root-before-name ordering fix, a crash between the
    // two slot persists produced exactly that state.
    for (FailurePolicy policy :
         {FailurePolicy::Pessimistic, FailurePolicy::Adversarial}) {
        bool completed = false;
        for (std::uint64_t at = 1; !completed; ++at) {
            SimClock local_clock;
            MetricsRegistry local_stats;
            NvramDevice local_dev(4 << 20, cost.cacheLineSize,
                                  local_stats);
            Pmem local_pmem(local_dev, local_clock, cost, local_stats);
            NvHeap local_heap(local_pmem, local_stats);
            NVWAL_CHECK_OK(local_heap.format(4096));
            NvOffset off;
            NVWAL_CHECK_OK(local_heap.nvMalloc(4096, &off));

            local_dev.reseed(at * 77 + 1);
            local_dev.setScheduledCrashPolicy(policy, 0.5);
            local_dev.scheduleCrashAtOp(at);
            try {
                NVWAL_CHECK_OK(local_heap.setRoot("app", off));
                completed = true;
            } catch (const PowerFailure &) {
            }
            local_dev.scheduleCrashAtOp(0);

            NvHeap recovered(local_pmem, local_stats);
            NVWAL_CHECK_OK(recovered.attach());
            NVWAL_CHECK_OK(recovered.recover());
            NvOffset found = 0;
            const Status s = recovered.getRoot("app", &found);
            if (s.isOk())
                EXPECT_EQ(found, off) << "op " << at;
            else
                EXPECT_TRUE(s.isNotFound()) << s.toString();
        }
    }
}

TEST_F(NvHeapTest, ExhaustionReturnsNoSpace)
{
    // Allocate everything, then expect NoSpace.
    NvOffset off;
    Status s = Status::ok();
    std::uint64_t count = 0;
    while ((s = heap.nvMalloc(heap.blockSize(), &off)).isOk())
        ++count;
    EXPECT_EQ(s.code(), StatusCode::NoSpace);
    EXPECT_EQ(count, heap.numBlocks());
}

TEST_F(NvHeapTest, HeapCallsAreCharged)
{
    const SimTime before = clock.now();
    const std::uint64_t calls_before = stats.get(stats::kHeapCalls);
    NvOffset off;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &off));
    NVWAL_CHECK_OK(heap.nvFree(off));
    EXPECT_EQ(stats.get(stats::kHeapCalls) - calls_before, 2u);
    EXPECT_GE(clock.now() - before, 2 * cost.heapCallNs);
}

TEST_F(NvHeapTest, ZeroByteAllocationRejected)
{
    NvOffset off;
    EXPECT_FALSE(heap.nvMalloc(0, &off).isOk());
}

TEST_F(NvHeapTest, CountBlocksByState)
{
    const std::uint64_t free_before = heap.countBlocks(BlockState::Free);
    NvOffset a, b;
    NVWAL_CHECK_OK(heap.nvMalloc(4096, &a));
    NVWAL_CHECK_OK(heap.nvPreMalloc(4096, &b));
    EXPECT_EQ(heap.countBlocks(BlockState::Free), free_before - 2);
    EXPECT_EQ(heap.countBlocks(BlockState::InUse), 1u);
    EXPECT_EQ(heap.countBlocks(BlockState::Pending), 1u);
}

} // namespace
} // namespace nvwal
